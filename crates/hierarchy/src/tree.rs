//! The [`Hierarchy`] tree: storage, traversal, sibling groups, leaf ranges.

/// An attribute hierarchy.
///
/// Nodes are identified by dense `usize` ids; node `0` is the root. Leaves
/// are additionally numbered by *position* `0..leaf_count()` in
/// left-to-right traversal order — positions are the nominal domain values
/// used by frequency matrices and queries.
///
/// Levels are 1-based as in the paper: the root is level 1, and the
/// hierarchy's *height* `h` is the maximum level of any leaf. Hierarchies
/// need not have all leaves at the same depth (the paper's census
/// hierarchies do, but nothing in the transform requires it; sensitivity
/// accounting uses the maximum depth).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hierarchy {
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    level: Vec<usize>,
    leaf_lo: Vec<usize>,
    leaf_hi: Vec<usize>,
    /// Node id of the leaf at each domain position.
    leaf_nodes: Vec<usize>,
    /// All node ids in level order (root first, then level 2, ...).
    level_order: Vec<usize>,
    /// Inverse of `level_order`.
    level_order_pos: Vec<usize>,
    labels: Vec<String>,
    height: usize,
}

impl Hierarchy {
    /// Internal constructor used by the builders; assumes the parent /
    /// children arrays already describe a valid tree rooted at node 0 with
    /// every internal node having ≥ 2 children.
    pub(crate) fn from_parts(
        parent: Vec<Option<usize>>,
        children: Vec<Vec<usize>>,
        labels: Vec<String>,
    ) -> Self {
        let n = parent.len();
        debug_assert_eq!(children.len(), n);
        debug_assert_eq!(labels.len(), n);

        // Levels via BFS from the root; this is also the level order.
        let mut level = vec![0usize; n];
        let mut level_order = Vec::with_capacity(n);
        level[0] = 1;
        let mut queue = std::collections::VecDeque::from([0usize]);
        while let Some(id) = queue.pop_front() {
            level_order.push(id);
            for &c in &children[id] {
                level[c] = level[id] + 1;
                queue.push_back(c);
            }
        }
        debug_assert_eq!(level_order.len(), n);
        let mut level_order_pos = vec![0usize; n];
        for (pos, &id) in level_order.iter().enumerate() {
            level_order_pos[id] = pos;
        }

        // Leaf positions via iterative DFS (left-to-right).
        let mut leaf_lo = vec![usize::MAX; n];
        let mut leaf_hi = vec![0usize; n];
        let mut leaf_nodes = Vec::new();
        let mut stack = vec![(0usize, false)];
        while let Some((id, processed)) = stack.pop() {
            if children[id].is_empty() {
                let pos = leaf_nodes.len();
                leaf_lo[id] = pos;
                leaf_hi[id] = pos;
                leaf_nodes.push(id);
            } else if processed {
                leaf_lo[id] = leaf_lo[children[id][0]];
                leaf_hi[id] = leaf_hi[*children[id].last().expect("internal has children")];
            } else {
                stack.push((id, true));
                for &c in children[id].iter().rev() {
                    stack.push((c, false));
                }
            }
        }

        let height = leaf_nodes.iter().map(|&id| level[id]).max().unwrap_or(1);

        Hierarchy {
            parent,
            children,
            level,
            leaf_lo,
            leaf_hi,
            leaf_nodes,
            level_order,
            level_order_pos,
            labels,
            height,
        }
    }

    /// Number of nodes (internal + leaves). This is the number of nominal
    /// wavelet coefficients the transform produces (§V-A's `m'`).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.parent.len()
    }

    /// Number of leaves (= nominal domain size).
    #[inline]
    pub fn leaf_count(&self) -> usize {
        self.leaf_nodes.len()
    }

    /// Height `h`: maximum 1-based level of any leaf.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// The root node id (always 0).
    #[inline]
    pub fn root(&self) -> usize {
        0
    }

    /// Whether `id` is a leaf.
    #[inline]
    pub fn is_leaf(&self, id: usize) -> bool {
        self.children[id].is_empty()
    }

    /// Children of `id` (empty for leaves).
    #[inline]
    pub fn children(&self, id: usize) -> &[usize] {
        &self.children[id]
    }

    /// Parent of `id`, `None` for the root.
    #[inline]
    pub fn parent(&self, id: usize) -> Option<usize> {
        self.parent[id]
    }

    /// Fanout (number of children) of `id`.
    #[inline]
    pub fn fanout(&self, id: usize) -> usize {
        self.children[id].len()
    }

    /// 1-based level of `id` (root = 1).
    #[inline]
    pub fn level(&self, id: usize) -> usize {
        self.level[id]
    }

    /// Human-readable label of `id`.
    #[inline]
    pub fn label(&self, id: usize) -> &str {
        &self.labels[id]
    }

    /// Inclusive range of leaf positions under `id`.
    #[inline]
    pub fn leaf_range(&self, id: usize) -> (usize, usize) {
        (self.leaf_lo[id], self.leaf_hi[id])
    }

    /// Node id of the leaf at domain position `pos`.
    #[inline]
    pub fn leaf_node(&self, pos: usize) -> usize {
        self.leaf_nodes[pos]
    }

    /// All node ids in level order (root first). This is the coefficient
    /// layout order of the nominal wavelet transform (§VI-A: "sorted based
    /// on a level-order traversal ... the base coefficient always ranks
    /// first").
    #[inline]
    pub fn level_order(&self) -> &[usize] {
        &self.level_order
    }

    /// Position of node `id` in the level order.
    #[inline]
    pub fn level_order_pos(&self, id: usize) -> usize {
        self.level_order_pos[id]
    }

    /// Iterates over all node ids, root included.
    pub fn node_ids(&self) -> impl Iterator<Item = usize> + '_ {
        0..self.node_count()
    }

    /// Iterates over all internal node ids.
    pub fn internal_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.node_ids().filter(move |&id| !self.is_leaf(id))
    }

    /// Iterates over the sibling groups: for every internal node, the slice
    /// of its children. These are the groups over which the nominal
    /// transform's mean-subtraction refinement operates (§V-B).
    pub fn sibling_groups(&self) -> impl Iterator<Item = &[usize]> + '_ {
        self.internal_nodes().map(move |id| self.children(id))
    }

    /// Path from the root down to the leaf at position `pos` (inclusive on
    /// both ends). The nominal reconstruction (Eq. 5) walks this path.
    pub fn path_to_leaf(&self, pos: usize) -> Vec<usize> {
        let mut path = Vec::with_capacity(self.height);
        let mut cur = Some(self.leaf_nodes[pos]);
        while let Some(id) = cur {
            path.push(id);
            cur = self.parent[id];
        }
        path.reverse();
        path
    }

    /// Node ids at a given 1-based level.
    pub fn nodes_at_level(&self, lvl: usize) -> Vec<usize> {
        self.level_order
            .iter()
            .copied()
            .filter(|&id| self.level[id] == lvl)
            .collect()
    }

    /// All non-root node ids (candidate nominal query predicates are
    /// non-root nodes per §VII-A).
    pub fn non_root_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        1..self.node_count()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::Spec;
    use crate::Hierarchy;

    /// The Figure-3 hierarchy: root with two children, each with 3 leaves.
    pub(crate) fn figure3() -> Hierarchy {
        Spec::internal(
            "any",
            vec![
                Spec::internal(
                    "c1",
                    vec![Spec::leaf("v1"), Spec::leaf("v2"), Spec::leaf("v3")],
                ),
                Spec::internal(
                    "c2",
                    vec![Spec::leaf("v4"), Spec::leaf("v5"), Spec::leaf("v6")],
                ),
            ],
        )
        .build()
        .unwrap()
    }

    #[test]
    fn figure3_shape() {
        let h = figure3();
        assert_eq!(h.leaf_count(), 6);
        assert_eq!(h.node_count(), 9);
        assert_eq!(h.height(), 3);
        assert_eq!(h.fanout(h.root()), 2);
    }

    #[test]
    fn figure3_levels_and_leaf_ranges() {
        let h = figure3();
        assert_eq!(h.level(h.root()), 1);
        let mids = h.nodes_at_level(2);
        assert_eq!(mids.len(), 2);
        assert_eq!(h.leaf_range(mids[0]), (0, 2));
        assert_eq!(h.leaf_range(mids[1]), (3, 5));
        assert_eq!(h.leaf_range(h.root()), (0, 5));
        for pos in 0..6 {
            let leaf = h.leaf_node(pos);
            assert!(h.is_leaf(leaf));
            assert_eq!(h.leaf_range(leaf), (pos, pos));
            assert_eq!(h.level(leaf), 3);
        }
    }

    #[test]
    fn figure3_level_order_is_bfs() {
        let h = figure3();
        let order = h.level_order();
        assert_eq!(order[0], h.root());
        let levels: Vec<usize> = order.iter().map(|&id| h.level(id)).collect();
        let mut sorted = levels.clone();
        sorted.sort_unstable();
        assert_eq!(
            levels, sorted,
            "level order must be non-decreasing in level"
        );
        for (pos, &id) in order.iter().enumerate() {
            assert_eq!(h.level_order_pos(id), pos);
        }
    }

    #[test]
    fn figure3_paths() {
        let h = figure3();
        let p = h.path_to_leaf(0);
        assert_eq!(p.len(), 3);
        assert_eq!(p[0], h.root());
        assert_eq!(h.label(p[2]), "v1");
        let p5 = h.path_to_leaf(5);
        assert_eq!(h.label(p5[2]), "v6");
        assert_eq!(h.label(p5[1]), "c2");
    }

    #[test]
    fn sibling_groups_cover_all_non_root_nodes() {
        let h = figure3();
        let grouped: usize = h.sibling_groups().map(|g| g.len()).sum();
        assert_eq!(grouped, h.node_count() - 1);
        for g in h.sibling_groups() {
            assert!(g.len() >= 2);
            let parent = h.parent(g[0]).unwrap();
            for &c in g {
                assert_eq!(h.parent(c), Some(parent));
            }
        }
    }

    #[test]
    fn single_leaf_hierarchy_is_degenerate_but_valid() {
        let h = Spec::leaf("only").build().unwrap();
        assert_eq!(h.leaf_count(), 1);
        assert_eq!(h.node_count(), 1);
        assert_eq!(h.height(), 1);
        assert!(h.is_leaf(h.root()));
        assert_eq!(h.path_to_leaf(0), vec![0]);
    }

    #[test]
    fn uneven_depth_hierarchy() {
        // Root -> (leaf a, internal b -> (leaf c, leaf d)).
        let h = Spec::internal(
            "root",
            vec![
                Spec::leaf("a"),
                Spec::internal("b", vec![Spec::leaf("c"), Spec::leaf("d")]),
            ],
        )
        .build()
        .unwrap();
        assert_eq!(h.leaf_count(), 3);
        assert_eq!(h.height(), 3);
        assert_eq!(h.level(h.leaf_node(0)), 2);
        assert_eq!(h.level(h.leaf_node(1)), 3);
        assert_eq!(h.leaf_range(h.root()), (0, 2));
    }
}
