//! Attribute hierarchies for nominal domains.
//!
//! The paper (§II-A) assumes every nominal attribute has an associated
//! hierarchy: a tree whose leaves are the domain values and whose internal
//! nodes summarize the leaves below them (Figure 1's country hierarchy).
//! Hierarchies drive three things in this reproduction:
//!
//! 1. **Query semantics** — a nominal range-count predicate selects either a
//!    leaf or all leaves under an internal node (§II-A). We order each
//!    nominal domain by a left-to-right traversal so that every node's
//!    leaves occupy a *contiguous* range of positions (§V-A's imposed total
//!    order), letting the query engine treat nominal predicates as
//!    intervals.
//! 2. **The nominal wavelet transform** (§V) — one coefficient per hierarchy
//!    node, with weights determined by sibling-group sizes.
//! 3. **Privacy accounting** — the generalized sensitivity of the nominal
//!    transform is the hierarchy height `h` (Lemma 4).
//!
//! Invariants enforced by the builders: every internal node has at least two
//! children (the paper's assumption guaranteeing `h ≤ log₂ m`; it also keeps
//! the weight `f/(2f−2)` finite), and leaves are indexed `0..leaf_count` in
//! traversal order.

// No unsafe anywhere in this crate — enforced at compile time (and
// pinned by privelet-analysis lint US002). The only workspace crate
// with unsafe code is privelet-matrix (worker pool / lane executor).
#![forbid(unsafe_code)]

pub mod builder;
pub mod tree;

pub use builder::Spec;
pub use tree::Hierarchy;

/// Errors produced by hierarchy construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierarchyError {
    /// An internal node has fewer than two children.
    UndersizedInternal { label: String, children: usize },
    /// A balanced builder was asked for zero leaves or zero fanout.
    ZeroSize,
    /// A three-level builder cannot distribute leaves so that every group
    /// has at least two leaves.
    InfeasibleGrouping { leaves: usize, groups: usize },
}

impl std::fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HierarchyError::UndersizedInternal { label, children } => write!(
                f,
                "internal node '{label}' has {children} child(ren); every internal node needs >= 2"
            ),
            HierarchyError::ZeroSize => write!(f, "hierarchy must have at least one leaf"),
            HierarchyError::InfeasibleGrouping { leaves, groups } => write!(
                f,
                "cannot split {leaves} leaves into {groups} groups of >= 2 leaves each"
            ),
        }
    }
}

impl std::error::Error for HierarchyError {}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, HierarchyError>;
