//! Every lint must demonstrably *fire* on its known-bad fixture — a
//! lint that never fires is worse than no lint, because it certifies
//! invariants it does not check. Each fixture also contains the
//! compliant variant of the same pattern, which must stay silent.

use privelet_analysis::lints::{self, Diagnostic};
use privelet_analysis::model::FileModel;
use privelet_analysis::workspace::CrateInfo;

/// Lints one fixture as if it were a file of crate `name`.
fn lint_fixture(name: &str, file: &str, src: &str) -> lints::CrateFindings {
    let info = CrateInfo {
        name: name.to_string(),
        root_file: file.to_string(),
        files: Vec::new(),
    };
    lints::lint_crate(&info, &[(file.to_string(), FileModel::parse(src))])
}

fn with_id<'a>(diags: &'a [Diagnostic], lint: &str) -> Vec<&'a Diagnostic> {
    diags.iter().filter(|d| d.lint == lint).collect()
}

#[test]
fn pb001_fires_on_raw_counts_in_serving_crate() {
    let src = include_str!("fixtures/pb001_taint.rs");
    let out = lint_fixture(lints::SERVING_CRATE, "fixtures/pb001_taint.rs", src);
    let hits = with_id(&out.diags, "PB001");
    assert!(
        hits.len() >= 2,
        "expected PB001 on the use and on the signatures, got: {:?}",
        out.diags
    );
    // The `use` line names both the banned module and the banned type.
    assert!(
        hits.iter().any(|d| d.line == 4),
        "use line not flagged: {hits:?}"
    );
    // The #[cfg(test)] module at the bottom must not be flagged.
    assert!(
        hits.iter().all(|d| d.line < 14),
        "test code was flagged: {hits:?}"
    );
}

#[test]
fn pb001_is_scoped_to_the_serving_crate() {
    let src = include_str!("fixtures/pb001_taint.rs");
    let out = lint_fixture("privelet-data", "fixtures/pb001_taint.rs", src);
    assert!(
        with_id(&out.diags, "PB001").is_empty(),
        "PB001 must only guard {}",
        lints::SERVING_CRATE
    );
}

#[test]
fn us001_fires_only_on_undocumented_unsafe() {
    let src = include_str!("fixtures/us001_unsafe.rs");
    let out = lint_fixture("privelet-matrix", "fixtures/us001_unsafe.rs", src);
    let hits = with_id(&out.diags, "US001");
    assert_eq!(
        hits.len(),
        1,
        "exactly the undocumented block should fire: {:?}",
        out.diags
    );
    assert_eq!(hits[0].line, 5);
}

#[test]
fn us002_fires_on_missing_forbid() {
    let src = include_str!("fixtures/us002_no_forbid.rs");
    let out = lint_fixture("some-safe-crate", "fixtures/us002_no_forbid.rs", src);
    let hits = with_id(&out.diags, "US002");
    assert_eq!(hits.len(), 1, "{:?}", out.diags);
    // And the fix silences it:
    let fixed = format!("#![forbid(unsafe_code)]\n{src}");
    let out = lint_fixture("some-safe-crate", "fixtures/us002_no_forbid.rs", &fixed);
    assert!(with_id(&out.diags, "US002").is_empty());
}

#[test]
fn us002_rejects_unsafe_outside_the_matrix_crate() {
    let src = "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: fixture.\n    unsafe { *p }\n}\n";
    let out = lint_fixture("privelet-noise", "lib.rs", src);
    assert_eq!(with_id(&out.diags, "US002").len(), 1, "{:?}", out.diags);
    let out = lint_fixture(lints::UNSAFE_CRATE, "lib.rs", src);
    assert!(with_id(&out.diags, "US002").is_empty(), "{:?}", out.diags);
}

#[test]
fn ld001_fires_on_double_lock_but_not_on_scoped_or_dropped_guards() {
    let src = include_str!("fixtures/ld001_double_lock.rs");
    let out = lint_fixture("privelet-query", "fixtures/ld001_double_lock.rs", src);
    let hits = with_id(&out.diags, "LD001");
    assert_eq!(hits.len(), 1, "{:?}", out.diags);
    assert_eq!(hits[0].line, 9, "should fire inside double_lock only");
    assert!(
        hits[0].message.contains("ga"),
        "names the live guard: {}",
        hits[0].message
    );
}

#[test]
fn ld002_fires_on_poison_panics_only() {
    let src = include_str!("fixtures/ld002_poison_panic.rs");
    let out = lint_fixture("privelet-query", "fixtures/ld002_poison_panic.rs", src);
    let hits = with_id(&out.diags, "LD002");
    let lines: Vec<u32> = hits.iter().map(|d| d.line).collect();
    assert_eq!(
        lines,
        vec![7, 11, 19],
        "expression-position, expect, and let-bound forms all fire: {:?}",
        out.diags
    );
}

#[test]
fn fd001_fires_on_unordered_accumulation_only() {
    let src = include_str!("fixtures/fd001_unordered_sum.rs");
    let out = lint_fixture("privelet-core", "fixtures/fd001_unordered_sum.rs", src);
    let hits = with_id(&out.diags, "FD001");
    let lines: Vec<u32> = hits.iter().map(|d| d.line).collect();
    assert_eq!(
        lines,
        vec![9, 16],
        "loop += and .values().sum() fire; BTreeMap loop stays silent: {:?}",
        out.diags
    );
}

#[test]
fn pf001_counts_unwaived_sites_and_honors_waivers() {
    let src = include_str!("fixtures/pf001_panics.rs");
    let out = lint_fixture("privelet-core", "fixtures/pf001_panics.rs", src);
    assert_eq!(
        out.panic_sites.len(),
        3,
        "unwrap + expect + panic! count, waived and test sites do not: {:?}",
        out.panic_sites
    );
    assert_eq!(out.waived_panics, 1);
    let whats: Vec<&str> = out.panic_sites.iter().map(|s| s.what.as_str()).collect();
    assert_eq!(whats, vec![".unwrap()", ".expect()", "panic!"]);
}
