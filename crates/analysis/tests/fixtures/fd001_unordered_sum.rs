//! FD001 fixture: f64 accumulation driven by HashMap/HashSet iteration
//! order (fires twice), versus BTreeMap iteration (does not fire).

use std::collections::{BTreeMap, HashMap};

pub fn loop_accumulation(weights: &HashMap<u32, f64>) -> f64 {
    let mut total = 0.0;
    for (_k, v) in weights.iter() {
        total += v; // FD001 here
    }
    total
}

pub fn chain_accumulation() -> f64 {
    let weights: HashMap<u32, f64> = HashMap::new();
    weights.values().sum() // FD001 here
}

pub fn ordered_is_fine(weights: &BTreeMap<u32, f64>) -> f64 {
    let mut total = 0.0;
    for (_k, v) in weights.iter() {
        total += v;
    }
    total
}
