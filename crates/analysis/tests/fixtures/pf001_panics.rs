//! PF001 fixture: three unwaived panic sites, one waived, and test
//! code that never counts.

pub fn three_sites(v: Option<u32>) -> u32 {
    let a = v.unwrap(); // counted
    let b = v.expect("present"); // counted
    if a != b {
        panic!("impossible"); // counted
    }
    a
}

pub fn waived(v: Option<u32>) -> u32 {
    // lint:allow(panic): fixture demonstrating the waiver syntax
    v.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_unwrap_freely() {
        assert_eq!(Some(3).unwrap(), 3);
    }
}
