//! PB001 fixture: a serving-crate file that imports raw-count data.
//! Expected: PB001 fires on the `use` line and the signature line.

use privelet_data::freq::FrequencyMatrix;

pub fn leak_counts(fm: &FrequencyMatrix) -> f64 {
    fm_total(fm)
}

fn fm_total(_fm: &FrequencyMatrix) -> f64 {
    0.0
}

#[cfg(test)]
mod tests {
    // Test code may hold raw counts freely; PB001 must NOT fire here.
    use privelet_data::freq::FrequencyMatrix;

    fn _ok(_fm: &FrequencyMatrix) {}
}
