//! LD001 fixture: acquiring a second lock while a guard is live
//! (fires), versus drop-then-lock and scoped-guard patterns (do not
//! fire).

use std::sync::Mutex;

pub fn double_lock(a: &Mutex<u64>, b: &Mutex<u64>) -> u64 {
    let ga = a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let gb = b.lock().unwrap_or_else(std::sync::PoisonError::into_inner); // LD001 here
    *ga + *gb
}

pub fn drop_then_lock(a: &Mutex<u64>, b: &Mutex<u64>) -> u64 {
    let ga = a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let x = *ga;
    drop(ga);
    let gb = b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    x + *gb
}

pub fn scoped_guards(a: &Mutex<u64>, b: &Mutex<u64>) -> u64 {
    let x = {
        let ga = a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *ga
    };
    let gb = b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    x + *gb
}
