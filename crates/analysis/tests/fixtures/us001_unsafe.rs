//! US001 fixture: one undocumented unsafe block (fires), one documented
//! (does not fire), one documented unsafe fn (does not fire).

pub fn undocumented(p: *const f64) -> f64 {
    unsafe { *p }
}

pub fn documented(p: *const f64) -> f64 {
    // SAFETY: caller guarantees `p` is valid for reads (fixture).
    unsafe { *p }
}

/// Reads through `p`.
///
/// # Safety
/// `p` must be valid for reads.
pub unsafe fn documented_fn(p: *const f64) -> f64 {
    // SAFETY: contract delegated to the caller per the doc section.
    unsafe { *p }
}
