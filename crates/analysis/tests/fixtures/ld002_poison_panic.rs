//! LD002 fixture: `.lock().unwrap()` / `.lock().expect(...)` poison
//! panics (fire), versus the poison-robust idiom (does not fire).

use std::sync::{Mutex, PoisonError};

pub fn poison_panic(m: &Mutex<u64>) -> u64 {
    *m.lock().unwrap() // LD002 here
}

pub fn poison_panic_expect(m: &Mutex<u64>) -> u64 {
    *m.lock().expect("not poisoned") // LD002 here
}

pub fn poison_robust(m: &Mutex<u64>) -> u64 {
    *m.lock().unwrap_or_else(PoisonError::into_inner)
}

pub fn let_bound_poison_panic(m: &Mutex<u64>) -> u64 {
    let g = m.lock().unwrap(); // LD002 here too (the commonest shape)
    *g
}
