//! US002 fixture: a crate root with zero unsafe code that fails to
//! declare `#![forbid(unsafe_code)]`. Expected: US002 fires at line 1.

pub fn totally_safe() -> u32 {
    7
}
