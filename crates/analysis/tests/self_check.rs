//! The workspace must pass its own analyzer — this is the committed
//! guarantee behind the lint catalog in `docs/static-analysis.md`: the
//! privacy boundary holds with zero waivers, every unsafe site is
//! documented, lock and float discipline hold, and the panic budget in
//! `analysis.toml` matches reality exactly (no silent drift in either
//! direction).

use privelet_analysis::run_check;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analysis sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_is_clean_under_committed_baseline() {
    let root = workspace_root();
    let baseline = std::fs::read_to_string(root.join("analysis.toml"))
        .expect("analysis.toml is committed at the workspace root");
    let outcome = run_check(&root, Some(&baseline)).expect("check runs");
    assert!(
        outcome.violations.is_empty(),
        "workspace lint violations:\n{}",
        outcome
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The budget is exact, not just an upper bound: being *under*
    // budget is a warning asking for a ratchet, and this test keeps the
    // committed numbers honest on both sides.
    assert!(
        outcome.warnings.is_empty(),
        "baseline drift:\n{}",
        outcome.warnings.join("\n")
    );
}

#[test]
fn privacy_boundary_holds_with_zero_waivers() {
    // PB001 has no waiver mechanism at all — this test documents that:
    // the only way to get raw counts into the serving crate is to edit
    // the analyzer's policy in plain sight.
    let root = workspace_root();
    let outcome = run_check(&root, None).expect("check runs");
    assert!(
        outcome.violations.iter().all(|v| v.lint != "PB001"),
        "privacy boundary violated"
    );
}
