//! Workspace discovery: find every member crate and its `src/` files by
//! reading the manifests directly — no `cargo metadata`, no deps.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One workspace crate with its sources loaded.
#[derive(Debug)]
pub struct CrateInfo {
    /// Package name from `Cargo.toml` (e.g. `privelet-query`).
    pub name: String,
    /// Root source file, workspace-relative (`crates/query/src/lib.rs`).
    pub root_file: String,
    /// `(workspace-relative path, contents)` for every `.rs` under
    /// `src/`, sorted by path for deterministic output.
    pub files: Vec<(String, String)>,
}

/// Reads the workspace root `Cargo.toml` and loads every member crate
/// (plus the root package itself). `src/` trees only — integration
/// tests, benches and examples are intentionally out of scope: the
/// lints encode *library* discipline.
pub fn discover(root: &Path) -> io::Result<Vec<CrateInfo>> {
    let manifest = fs::read_to_string(root.join("Cargo.toml"))?;
    let mut dirs: Vec<PathBuf> = vec![PathBuf::new()]; // the root package
    for member in parse_members(&manifest) {
        dirs.push(PathBuf::from(member));
    }
    let mut crates = Vec::new();
    for dir in dirs {
        let crate_dir = root.join(&dir);
        let crate_manifest = fs::read_to_string(crate_dir.join("Cargo.toml"))?;
        let Some(name) = parse_package_name(&crate_manifest) else {
            continue; // virtual manifest
        };
        let src = crate_dir.join("src");
        let mut files = Vec::new();
        collect_rs(&src, &mut files)?;
        files.sort();
        let mut loaded = Vec::with_capacity(files.len());
        let mut root_file = String::new();
        for f in files {
            let rel = rel_display(root, &f);
            let file_name = f.file_name().and_then(|n| n.to_str());
            if (file_name == Some("lib.rs")
                || (root_file.is_empty() && file_name == Some("main.rs")))
                && f.parent() == Some(src.as_path())
            {
                root_file = rel.clone();
            }
            loaded.push((rel, fs::read_to_string(&f)?));
        }
        crates.push(CrateInfo {
            name,
            root_file,
            files: loaded,
        });
    }
    crates.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(crates)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_display(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Pulls the quoted entries out of `members = [ ... ]`.
fn parse_members(manifest: &str) -> Vec<String> {
    let Some(start) = manifest.find("members") else {
        return Vec::new();
    };
    let Some(open) = manifest[start..].find('[') else {
        return Vec::new();
    };
    let Some(close) = manifest[start + open..].find(']') else {
        return Vec::new();
    };
    let body = &manifest[start + open + 1..start + open + close];
    body.split(',')
        .filter_map(|s| {
            let s = s.trim().trim_matches('"');
            (!s.is_empty()).then(|| s.to_string())
        })
        .collect()
}

/// First `name = "..."` after `[package]`.
fn parse_package_name(manifest: &str) -> Option<String> {
    let pkg = manifest.find("[package]")?;
    for line in manifest[pkg..].lines().skip(1) {
        let line = line.trim();
        if line.starts_with('[') {
            return None; // next section before a name — malformed
        }
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                return Some(rest.trim().trim_matches('"').to_string());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_and_name_parse() {
        let manifest = r#"
[workspace]
members = [
    "crates/a",
    "crates/b",
]

[package]
name = "root-pkg"
version = "0.1.0"
"#;
        assert_eq!(parse_members(manifest), vec!["crates/a", "crates/b"]);
        assert_eq!(parse_package_name(manifest), Some("root-pkg".to_string()));
    }

    #[test]
    fn virtual_manifest_has_no_name() {
        assert_eq!(parse_package_name("[workspace]\nmembers = []\n"), None);
    }
}
