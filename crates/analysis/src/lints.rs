//! The five project-specific lints.
//!
//! | ID    | Checks |
//! |-------|--------|
//! | PB001 | privacy-boundary taint: raw-count types must not appear in the serving crate |
//! | US001 | every `unsafe` block/fn/impl carries a `SAFETY:` comment |
//! | US002 | crates with zero `unsafe` declare `#![forbid(unsafe_code)]` |
//! | LD001 | no lock acquisition while a `MutexGuard` binding is live (single-lock rule) |
//! | LD002 | no `.lock().unwrap()` poison-panics in library code |
//! | FD001 | no `f64` accumulation driven by `HashMap`/`HashSet` iteration order |
//! | PF001 | panic budget: unwaived `unwrap`/`expect`/`panic!`/`todo!` per crate, ratchet-only |
//!
//! All lints skip `#[cfg(test)]` / `#[test]` code (tests may hold raw
//! data, double-lock on purpose, and unwrap freely). Waiver syntax for
//! PF001: a `// lint:allow(panic): <reason>` comment on the site's
//! line or the line directly above.

use crate::model::{FileModel, FnItem, UnsafeKind};
use crate::workspace::CrateInfo;
use std::collections::BTreeMap;
use std::fmt;

/// The serving-tier crate PB001 guards.
pub const SERVING_CRATE: &str = "privelet-query";
/// The only crate allowed to contain `unsafe` (US002 requires a
/// `#![forbid(unsafe_code)]` everywhere else).
pub const UNSAFE_CRATE: &str = "privelet-matrix";
/// Raw-count types that must never taint the serving crate.
pub const BANNED_TYPES: &[&str] = &["FrequencyMatrix", "Table"];
/// `privelet_data` modules that carry raw counts or data loaders; only
/// `privelet_data::schema` (metadata) may cross into serving code.
pub const BANNED_DATA_MODULES: &[&str] = &[
    "freq",
    "table",
    "census",
    "medical",
    "uniform",
    "distributions",
];
/// The PF001 waiver marker.
pub const PANIC_WAIVER: &str = "lint:allow(panic):";

/// One finding, `file:line` addressable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub lint: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: {}",
            self.lint, self.file, self.line, self.message
        )
    }
}

/// An unwaived panic site (PF001 bookkeeping).
#[derive(Debug, Clone)]
pub struct PanicSite {
    pub file: String,
    pub line: u32,
    pub what: String,
}

/// Everything the lint pass produced for one crate.
#[derive(Debug, Default)]
pub struct CrateFindings {
    pub diags: Vec<Diagnostic>,
    pub panic_sites: Vec<PanicSite>,
    pub waived_panics: usize,
}

/// Runs every per-file lint over one crate's parsed files
/// (`(relative_path, model)` pairs) and the crate-level US002 check.
pub fn lint_crate(info: &CrateInfo, files: &[(String, FileModel)]) -> CrateFindings {
    let mut out = CrateFindings::default();
    let mut any_unsafe = false;
    let mut root_forbids = false;
    for (path, model) in files {
        let is_root = *path == info.root_file;
        if is_root && model.forbids_unsafe {
            root_forbids = true;
        }
        any_unsafe |= !model.unsafes.is_empty();
        if info.name == SERVING_CRATE {
            privacy_boundary(path, model, &mut out.diags);
        }
        unsafe_discipline(path, model, &mut out.diags);
        lock_discipline(path, model, &mut out.diags);
        float_determinism(path, model, &mut out.diags);
        panic_budget(path, model, &mut out);
    }
    // US002 is crate-level: unsafe-free crates must forbid unsafe at
    // the root; the one unsafe-bearing crate must not.
    if !any_unsafe && !root_forbids {
        out.diags.push(Diagnostic {
            lint: "US002",
            file: info.root_file.clone(),
            line: 1,
            message: format!(
                "crate `{}` contains no unsafe code but its root does not declare \
                 #![forbid(unsafe_code)]",
                info.name
            ),
        });
    }
    if any_unsafe && info.name != UNSAFE_CRATE {
        out.diags.push(Diagnostic {
            lint: "US002",
            file: info.root_file.clone(),
            line: 1,
            message: format!(
                "crate `{}` contains unsafe code; only `{UNSAFE_CRATE}` may \
                 (move the code or extend the policy deliberately)",
                info.name
            ),
        });
    }
    out.diags
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out.diags.dedup();
    out
}

/// PB001 — the Theorem-4 boundary: the serving crate must not name a
/// raw-count type or import a raw-data module, anywhere outside tests.
/// Noise injection in `privelet::mechanism` is the single point where
/// raw frequencies become publishable coefficients; if this lint is
/// green, no other path exists by construction.
fn privacy_boundary(path: &str, m: &FileModel, diags: &mut Vec<Diagnostic>) {
    for (i, t) in m.code.iter().enumerate() {
        if m.is_test_idx(i) {
            continue;
        }
        if BANNED_TYPES.iter().any(|b| t.is_ident(b)) {
            diags.push(Diagnostic {
                lint: "PB001",
                file: path.to_string(),
                line: t.line,
                message: format!(
                    "raw-count type `{}` in serving crate `{SERVING_CRATE}` — serving code \
                     may only consume CoefficientOutput/ReleaseCore/PrivacyMeta",
                    t.ident_text()
                ),
            });
        }
        if t.is_ident("privelet_data")
            && m.code.get(i + 1).map(|a| a.is_punct(':')).unwrap_or(false)
            && m.code.get(i + 2).map(|a| a.is_punct(':')).unwrap_or(false)
        {
            if let Some(seg) = m.code.get(i + 3) {
                if BANNED_DATA_MODULES.iter().any(|b| seg.is_ident(b)) {
                    diags.push(Diagnostic {
                        lint: "PB001",
                        file: path.to_string(),
                        line: t.line,
                        message: format!(
                            "raw-data module `privelet_data::{}` referenced from serving \
                             crate `{SERVING_CRATE}` (only privelet_data::schema may cross)",
                            seg.ident_text()
                        ),
                    });
                }
            }
        }
    }
}

/// US001 — every unsafe site carries a safety comment: on the same
/// line, or in a comment block ending at most 3 lines above (doc
/// `# Safety` sections on unsafe fns count).
fn unsafe_discipline(path: &str, m: &FileModel, diags: &mut Vec<Diagnostic>) {
    for site in &m.unsafes {
        let explained = m
            .comment_on(site.line)
            .map(|c| mentions_safety(&c.text))
            .unwrap_or(false)
            || m.comment_above(site.line)
                .map(|c| site.line.saturating_sub(c.end_line) <= 3 && mentions_safety(&c.text))
                .unwrap_or(false);
        if !explained {
            let what = match site.kind {
                UnsafeKind::Block => "unsafe block",
                UnsafeKind::Fn => "unsafe fn",
                UnsafeKind::Impl => "unsafe impl",
                UnsafeKind::Trait => "unsafe trait",
            };
            diags.push(Diagnostic {
                lint: "US001",
                file: path.to_string(),
                line: site.line,
                message: format!("{what} without a `// SAFETY:` comment"),
            });
        }
    }
}

fn mentions_safety(comment: &str) -> bool {
    comment.to_ascii_lowercase().contains("safety")
}

/// LD001 + LD002 over every non-test fn body.
fn lock_discipline(path: &str, m: &FileModel, diags: &mut Vec<Diagnostic>) {
    for f in m.fns.iter().filter(|f| !f.in_test) {
        let Some((lo, hi)) = f.body else { continue };
        scan_locks(path, m, lo, hi, diags);
    }
}

/// True when code index `i` starts a lock acquisition: an identifier
/// containing `lock` immediately followed by `(` (covers `.lock()`,
/// `lock_shard(…)`, `try_lock()` — not `Mutex::new`).
fn is_acquisition(m: &FileModel, i: usize) -> bool {
    let t = &m.code[i];
    t.kind == crate::lexer::TokenKind::Ident
        && t.ident_text().contains("lock")
        && !t.ident_text().contains("unlock")
        && m.code.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false)
}

fn scan_locks(path: &str, m: &FileModel, lo: usize, hi: usize, diags: &mut Vec<Diagnostic>) {
    // Live let-bound guards: (brace_depth, name).
    let mut live: Vec<(usize, String)> = Vec::new();
    let mut depth = 0usize;
    let mut i = lo;
    while i < hi {
        let t = &m.code[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            live.retain(|&(d, _)| d < depth);
            depth = depth.saturating_sub(1);
        } else if t.is_ident("drop") && m.code.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false)
        {
            if let Some(name) = m.code.get(i + 2).map(|n| n.ident_text().to_string()) {
                live.retain(|(_, g)| *g != name);
            }
        } else if t.is_ident("let")
            && !m
                .code
                .get(i.wrapping_sub(1))
                .map(|p| p.is_ident("if") || p.is_ident("while") || p.is_ident("else"))
                .unwrap_or(false)
        {
            // `let [mut] NAME … = INIT ;` — if INIT acquires a lock, the
            // binding is a live guard until its block closes.
            let mut j = i + 1;
            if m.code.get(j).map(|n| n.is_ident("mut")).unwrap_or(false) {
                j += 1;
            }
            let name = m
                .code
                .get(j)
                .filter(|n| n.kind == crate::lexer::TokenKind::Ident)
                .map(|n| n.ident_text().to_string());
            // Scan the statement to its `;` at this nesting level. An
            // acquisition inside a `{ … }` block within the init is
            // scoped to that block — it never escapes into the binding,
            // so it must not mark the binding as a guard (it still
            // counts as a second lock if one is already live).
            let mut d = 0usize;
            let mut dbrace = 0usize;
            let mut acquires_at = None;
            while j < hi {
                let u = &m.code[j];
                if u.is_punct('{') {
                    d += 1;
                    dbrace += 1;
                } else if u.is_punct('}') {
                    d = d.saturating_sub(1);
                    dbrace = dbrace.saturating_sub(1);
                } else if u.is_punct('(') || u.is_punct('[') {
                    d += 1;
                } else if u.is_punct(')') || u.is_punct(']') {
                    d = d.saturating_sub(1);
                } else if u.is_punct(';') && d == 0 {
                    break;
                } else if is_acquisition(m, j) {
                    if dbrace == 0 {
                        acquires_at = Some(u.line);
                    }
                    if !live.is_empty() {
                        report_double_lock(path, u.line, &live, diags);
                    }
                    // The commonest LD002 shape is exactly here:
                    // `let g = m.lock().unwrap();`.
                    if ld002_at(m, j) {
                        diags.push(ld002(path, u.line));
                    }
                }
                j += 1;
            }
            if let (Some(name), Some(_)) = (name, acquires_at) {
                live.push((depth, name));
            }
            i = j + 1;
            continue;
        } else if is_acquisition(m, i) && !live.is_empty() {
            report_double_lock(path, t.line, &live, diags);
        } else if ld002_at(m, i) {
            diags.push(ld002(path, t.line));
        }
        i += 1;
    }
}

fn ld002(path: &str, line: u32) -> Diagnostic {
    Diagnostic {
        lint: "LD002",
        file: path.to_string(),
        line,
        message: ".lock().unwrap() poison-panic in library code — use \
                  `.lock().unwrap_or_else(PoisonError::into_inner)` so a panicked \
                  writer degrades instead of cascading"
            .to_string(),
    }
}

fn report_double_lock(
    path: &str,
    line: u32,
    live: &[(usize, String)],
    diags: &mut Vec<Diagnostic>,
) {
    let holding: Vec<&str> = live.iter().map(|(_, n)| n.as_str()).collect();
    diags.push(Diagnostic {
        lint: "LD001",
        file: path.to_string(),
        line,
        message: format!(
            "lock acquired while guard{} `{}` still live — the single-lock rule keeps \
             the sharded cache deadlock-free by construction (drop or scope the first \
             guard before taking another lock)",
            if holding.len() > 1 { "s" } else { "" },
            holding.join("`, `")
        ),
    });
}

/// LD002 token pattern at `i`: `.` `lock` `(` `)` `.` `unwrap`|`expect`.
fn ld002_at(m: &FileModel, i: usize) -> bool {
    let p = |k: usize, ch: char| m.code.get(i + k).map(|t| t.is_punct(ch)).unwrap_or(false);
    let id = |k: usize, s: &str| m.code.get(i + k).map(|t| t.is_ident(s)).unwrap_or(false);
    i > 0
        && m.code[i - 1].is_punct('.')
        && id(0, "lock")
        && p(1, '(')
        && p(2, ')')
        && p(3, '.')
        && (id(4, "unwrap") || id(4, "expect"))
}

/// FD001 — flags `f64` accumulation driven by unordered iteration:
/// a local bound to a `HashMap`/`HashSet` (or a parameter typed as
/// one) whose `.iter()`/`.values()`/`.keys()`/`.drain()`/`.into_iter()`
/// feeds a `for` loop containing `+=` or an iterator chain ending in
/// `.sum()`/`.product()`/`.fold()`. Such sums are
/// nondeterministically ordered, which silently breaks the bitwise and
/// 1e-12 cross-path determinism contracts. Iterate a `BTreeMap`, sort
/// keys first, or accumulate integers instead.
fn float_determinism(path: &str, m: &FileModel, diags: &mut Vec<Diagnostic>) {
    for f in m.fns.iter().filter(|f| !f.in_test) {
        let Some((blo, bhi)) = f.body else { continue };
        let mut unordered: Vec<String> = Vec::new();
        // Parameters typed HashMap/HashSet: first ident of any sig
        // param group that mentions one.
        collect_unordered_params(m, f, &mut unordered);
        // Locals: `let [mut] NAME … = … HashMap/HashSet … ;`
        let mut i = blo;
        while i < bhi {
            if m.code[i].is_ident("let") {
                let mut j = i + 1;
                if m.code.get(j).map(|n| n.is_ident("mut")).unwrap_or(false) {
                    j += 1;
                }
                if let Some(name) = m
                    .code
                    .get(j)
                    .filter(|n| n.kind == crate::lexer::TokenKind::Ident)
                {
                    let name = name.ident_text().to_string();
                    let mut k = j;
                    while k < bhi && !m.code[k].is_punct(';') {
                        if m.code[k].is_ident("HashMap") || m.code[k].is_ident("HashSet") {
                            unordered.push(name.clone());
                            break;
                        }
                        k += 1;
                    }
                }
            }
            i += 1;
        }
        if unordered.is_empty() {
            continue;
        }
        scan_unordered_accumulation(path, m, blo, bhi, &unordered, diags);
    }
}

fn collect_unordered_params(m: &FileModel, f: &FnItem, unordered: &mut Vec<String>) {
    let (slo, shi) = f.sig;
    // Scan only inside the parameter parens; a `,` splits parameters
    // only at paren-depth 1 outside generic angle brackets, so
    // `HashMap<u32, f64>` stays one group.
    let Some(open) = (slo..shi).find(|&i| m.code[i].is_punct('(')) else {
        return;
    };
    let mut pdepth = 1usize;
    let mut angle = 0usize;
    let mut group_first: Option<String> = None;
    let mut group_has_unordered = false;
    let mut flush = |first: &mut Option<String>, has: &mut bool| {
        if *has {
            if let Some(n) = first.take() {
                unordered.push(n);
            }
        }
        *first = None;
        *has = false;
    };
    for i in open + 1..shi {
        let t = &m.code[i];
        if t.is_punct('(') || t.is_punct('[') {
            pdepth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            pdepth -= 1;
            if pdepth == 0 {
                break;
            }
        } else if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = angle.saturating_sub(1);
        } else if t.is_punct(',') && pdepth == 1 && angle == 0 {
            flush(&mut group_first, &mut group_has_unordered);
        } else if t.kind == crate::lexer::TokenKind::Ident {
            if t.is_ident("HashMap") || t.is_ident("HashSet") {
                group_has_unordered = true;
            } else if group_first.is_none() && !t.is_ident("mut") {
                group_first = Some(t.ident_text().to_string());
            }
        }
    }
    flush(&mut group_first, &mut group_has_unordered);
}

const ITER_METHODS: &[&str] = &[
    "iter",
    "values",
    "keys",
    "drain",
    "into_iter",
    "iter_mut",
    "values_mut",
];
const FOLD_METHODS: &[&str] = &["sum", "product", "fold"];

fn scan_unordered_accumulation(
    path: &str,
    m: &FileModel,
    blo: usize,
    bhi: usize,
    unordered: &[String],
    diags: &mut Vec<Diagnostic>,
) {
    let is_unordered_iter = |i: usize| -> bool {
        // NAME . iter-method (
        let t = &m.code[i];
        unordered.iter().any(|n| t.is_ident(n))
            && m.code.get(i + 1).map(|a| a.is_punct('.')).unwrap_or(false)
            && m.code
                .get(i + 2)
                .map(|a| ITER_METHODS.iter().any(|im| a.is_ident(im)))
                .unwrap_or(false)
    };
    let mut i = blo;
    while i < bhi {
        let t = &m.code[i];
        if t.is_ident("for") {
            // `for PAT in EXPR {` — does EXPR iterate an unordered
            // container (method call or `&name` / bare `name`)?
            let mut j = i + 1;
            while j < bhi && !m.code[j].is_ident("in") {
                j += 1;
            }
            let expr_start = j + 1;
            let mut k = expr_start;
            let mut drives = false;
            while k < bhi && !m.code[k].is_punct('{') {
                if is_unordered_iter(k)
                    || (unordered.iter().any(|n| m.code[k].is_ident(n))
                        && m.code.get(k + 1).map(|a| a.is_punct('{')).unwrap_or(false))
                    || (m.code[k].is_punct('&')
                        && m.code
                            .get(k + 1)
                            .map(|a| unordered.iter().any(|n| a.is_ident(n)))
                            .unwrap_or(false))
                {
                    drives = true;
                }
                k += 1;
            }
            if drives && k < bhi {
                let close = m.matching_brace(k);
                for b in k..close.min(bhi) {
                    if float_accumulation_at(m, b) {
                        diags.push(fd001(path, m.code[b].line));
                        break;
                    }
                }
            }
            i = k;
            continue;
        }
        if is_unordered_iter(i) {
            // Chain form: scan the rest of the statement for a folding
            // terminal.
            let mut k = i + 3;
            let mut d = 0usize;
            while k < bhi {
                let u = &m.code[k];
                if u.is_punct('(') || u.is_punct('[') || u.is_punct('{') {
                    d += 1;
                } else if u.is_punct(')') || u.is_punct(']') || u.is_punct('}') {
                    if d == 0 {
                        break;
                    }
                    d -= 1;
                } else if u.is_punct(';') && d == 0 {
                    break;
                } else if u.kind == crate::lexer::TokenKind::Ident
                    && FOLD_METHODS.iter().any(|fm| u.is_ident(fm))
                    && m.code
                        .get(k.wrapping_sub(1))
                        .map(|p| p.is_punct('.'))
                        .unwrap_or(false)
                {
                    diags.push(fd001(path, u.line));
                    break;
                }
                k += 1;
            }
        }
        i += 1;
    }
}

/// `+=` (adjacent `+` `=` tokens) — float-ish accumulation inside a
/// loop body. Integer counters trip this too; keep counters out of
/// unordered loops or switch the container to a `BTreeMap`.
fn float_accumulation_at(m: &FileModel, i: usize) -> bool {
    (m.code[i].is_punct('+')
        && m.code.get(i + 1).map(|n| n.is_punct('=')).unwrap_or(false)
        && m.code[i].line == m.code[i + 1].line)
        || (m.code[i].kind == crate::lexer::TokenKind::Ident
            && FOLD_METHODS.iter().any(|fm| m.code[i].is_ident(fm))
            && m.code
                .get(i.wrapping_sub(1))
                .map(|p| p.is_punct('.'))
                .unwrap_or(false))
}

fn fd001(path: &str, line: u32) -> Diagnostic {
    Diagnostic {
        lint: "FD001",
        file: path.to_string(),
        line,
        message: "accumulation driven by HashMap/HashSet iteration order — \
                  nondeterministic float summation breaks the bitwise/1e-12 determinism \
                  contracts; iterate a BTreeMap or sort keys first"
            .to_string(),
    }
}

/// PF001 — counts unwaived panic sites (`.unwrap()`, `.expect(`,
/// `panic!`, `todo!`, `unimplemented!`) in non-test code. The check
/// against the per-crate budget happens in [`crate::run_check`] where
/// the baseline is available.
fn panic_budget(path: &str, m: &FileModel, out: &mut CrateFindings) {
    for (i, t) in m.code.iter().enumerate() {
        if m.is_test_idx(i) {
            continue;
        }
        let bang = m.code.get(i + 1).map(|n| n.is_punct('!')).unwrap_or(false);
        let dot_call = i > 0
            && m.code[i - 1].is_punct('.')
            && m.code.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false);
        let what = if (t.is_ident("unwrap") || t.is_ident("expect")) && dot_call {
            format!(".{}()", t.ident_text())
        } else if (t.is_ident("panic") || t.is_ident("todo") || t.is_ident("unimplemented")) && bang
        {
            format!("{}!", t.ident_text())
        } else {
            continue;
        };
        let waived = m
            .comment_on(t.line)
            .map(|c| c.text.contains(PANIC_WAIVER))
            .unwrap_or(false)
            || m.comment_above(t.line)
                .map(|c| c.end_line + 1 == t.line && c.text.contains(PANIC_WAIVER))
                .unwrap_or(false);
        if waived {
            out.waived_panics += 1;
        } else {
            out.panic_sites.push(PanicSite {
                file: path.to_string(),
                line: t.line,
                what,
            });
        }
    }
}

/// Per-crate panic counts, for baseline comparison and `write-baseline`.
pub fn panic_counts(findings: &BTreeMap<String, CrateFindings>) -> BTreeMap<String, usize> {
    findings
        .iter()
        .map(|(name, f)| (name.clone(), f.panic_sites.len()))
        .collect()
}
