//! CLI for the workspace static analyzer.
//!
//! ```text
//! cargo run -p privelet-analysis -- check            # lint, exit 1 on violations
//! cargo run -p privelet-analysis -- check --root DIR # lint another checkout
//! cargo run -p privelet-analysis -- write-baseline   # regenerate analysis.toml
//! cargo run -p privelet-analysis -- panics [CRATE]   # list unwaived panic sites
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage/IO error.

#![forbid(unsafe_code)]

use privelet_analysis::baseline::Baseline;
use privelet_analysis::run_check;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    let mut cmd = None;
    let mut root = default_root();
    let mut filter = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                root = PathBuf::from(args.get(i).ok_or("--root needs a value")?);
            }
            "check" | "write-baseline" | "panics" if cmd.is_none() => {
                cmd = Some(args[i].clone());
            }
            other if cmd.as_deref() == Some("panics") && filter.is_none() => {
                filter = Some(other.to_string());
            }
            other => return Err(format!("unrecognized argument `{other}` (try `check`)")),
        }
        i += 1;
    }
    let cmd = cmd.ok_or("usage: privelet-analysis <check|write-baseline|panics> [--root DIR]")?;
    match cmd.as_str() {
        "check" => check(&root),
        "write-baseline" => write_baseline(&root),
        "panics" => panics(&root, filter.as_deref()),
        _ => unreachable!(),
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR/../..` when run via cargo,
/// the current directory otherwise.
fn default_root() -> PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => {
            let p = PathBuf::from(dir);
            p.parent()
                .and_then(Path::parent)
                .map(Path::to_path_buf)
                .unwrap_or(p)
        }
        Err(_) => PathBuf::from("."),
    }
}

fn load_baseline(root: &Path) -> Result<Option<String>, String> {
    match std::fs::read_to_string(root.join("analysis.toml")) {
        Ok(s) => Ok(Some(s)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(format!("reading analysis.toml: {e}")),
    }
}

fn check(root: &Path) -> Result<bool, String> {
    let baseline = load_baseline(root)?;
    if baseline.is_none() {
        eprintln!("warning: no analysis.toml found — PF001 budgets not enforced");
    }
    let outcome = run_check(root, baseline.as_deref())?;
    for w in &outcome.warnings {
        eprintln!("warning: {w}");
    }
    if outcome.violations.is_empty() {
        let total: usize = outcome.panic_counts.values().sum();
        println!(
            "analysis clean: {} crates checked, {} waivable panic sites within budget",
            outcome.panic_counts.len(),
            total
        );
        Ok(true)
    } else {
        for v in &outcome.violations {
            println!("{v}");
        }
        println!("{} violation(s)", outcome.violations.len());
        Ok(false)
    }
}

fn write_baseline(root: &Path) -> Result<bool, String> {
    let outcome = run_check(root, None)?;
    // Refuse to snapshot a workspace that fails the non-budget lints:
    // the baseline must only ever encode panic counts, not paper over
    // boundary or discipline violations.
    if !outcome.violations.is_empty() {
        for v in &outcome.violations {
            println!("{v}");
        }
        return Err(format!(
            "{} lint violation(s) — fix them before writing a baseline",
            outcome.violations.len()
        ));
    }
    let rendered = Baseline::render(&outcome.panic_counts);
    let path = root.join("analysis.toml");
    std::fs::write(&path, rendered).map_err(|e| format!("writing {}: {e}", path.display()))?;
    println!(
        "wrote {} ({} crates)",
        path.display(),
        outcome.panic_counts.len()
    );
    Ok(true)
}

fn panics(root: &Path, filter: Option<&str>) -> Result<bool, String> {
    let outcome = run_check(root, None)?;
    for (name, sites) in &outcome.panic_sites {
        if filter.is_some_and(|f| f != name) {
            continue;
        }
        if sites.is_empty() {
            continue;
        }
        println!("{name}: {} unwaived site(s)", sites.len());
        for s in sites {
            println!("  {}:{} {}", s.file, s.line, s.what);
        }
    }
    Ok(true)
}
