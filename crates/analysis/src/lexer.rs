//! A hand-rolled, dependency-free Rust lexer.
//!
//! Same in-character approach as the hand-rolled JSON codec in
//! `privelet-bench`: the build environment has no crates.io access, so
//! instead of `syn`/`proc-macro2` the analysis pass tokenizes Rust
//! source itself. It is a *lossy-but-honest* lexer — it classifies
//! every byte of the input into comments, string/char/number literals,
//! identifiers, lifetimes and punctuation, and gets the genuinely
//! tricky boundaries right (raw strings, nested block comments,
//! `'a` vs `'a'`, `r#ident`), because those are exactly the places a
//! grep-based checker silently reports nonsense. It does not attempt
//! full parsing; the item model in [`crate::model`] layers the little
//! structure the lints need on top of this token stream.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `foo`, `r#match` — raw prefix kept
    /// in the text).
    Ident,
    /// A lifetime such as `'a` or `'static` (text includes the quote).
    Lifetime,
    /// Character literal (`'x'`, `'\n'`, `'\u{1F600}'`) or byte char
    /// (`b'x'`).
    CharLit,
    /// String literal of any flavour: `"…"`, `r"…"`, `r#"…"#`, `b"…"`,
    /// `br#"…"#`, `c"…"`.
    StrLit,
    /// Number literal (integers, floats, all radixes, suffixes).
    NumLit,
    /// `// …` comment, including `///` and `//!` doc comments.
    LineComment,
    /// `/* … */` comment (nesting handled), including `/** … */`.
    BlockComment,
    /// One punctuation or operator character (`{`, `.`, `+`, …).
    /// Multi-character operators are emitted as consecutive tokens;
    /// consumers that care (e.g. the `+=` scan) check adjacency.
    Punct,
}

/// One token: kind, the exact source text, and 1-based position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based line of the token's last character (differs from `line`
    /// for multi-line strings and block comments).
    pub end_line: u32,
}

impl Token {
    /// True for `Ident` tokens whose text (raw prefix stripped) is `kw`.
    pub fn is_ident(&self, kw: &str) -> bool {
        self.kind == TokenKind::Ident && self.ident_text() == kw
    }

    /// Identifier text with any `r#` raw prefix stripped.
    pub fn ident_text(&self) -> &str {
        self.text.strip_prefix("r#").unwrap_or(&self.text)
    }

    /// True for `Punct` tokens with exactly this character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct
            && self.text.len() == ch.len_utf8()
            && self.text.starts_with(ch)
    }

    /// True for either comment kind.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Tokenizes `src`. Never fails: unterminated constructs are closed at
/// end of input (the lints operate on code that already compiles, so
/// this only matters for robustness on fixtures).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.pos),
                b'\'' => self.quote(),
                b'r' | b'b' | b'c' if self.raw_or_byte_prefix() => {}
                _ if is_ident_start(b) => self.ident(),
                _ if b.is_ascii_digit() => self.number(),
                _ => {
                    let start = self.pos;
                    // One (possibly multi-byte UTF-8) punctuation char.
                    self.pos += 1;
                    while self.pos < self.src.len() && (self.src[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    self.push(TokenKind::Punct, start, self.line);
                }
            }
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, start_line: u32) {
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.tokens.push(Token {
            kind,
            text,
            line: start_line,
            end_line: self.line,
        });
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.push(TokenKind::LineComment, start, self.line);
    }

    /// `/* … */` with arbitrary nesting: `/* /* */ */` is one comment.
    fn block_comment(&mut self) {
        let start = self.pos;
        let start_line = self.line;
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            match (self.src[self.pos], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokenKind::BlockComment, start, start_line);
    }

    /// Handles the `r` / `b` / `c` prefix families: raw strings
    /// (`r"…"`, `r#"…"#`), raw identifiers (`r#match`), byte strings
    /// (`b"…"`, `br#"…"#`), byte chars (`b'x'`) and C strings (`c"…"`).
    /// Returns false when the prefix is just the start of a plain
    /// identifier, leaving the position untouched.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let start = self.pos;
        let b0 = self.src[self.pos];
        // How many prefix letters before the quote/hash part?
        let (letters, second) = match (b0, self.peek(1)) {
            (b'b', Some(b'r')) | (b'c', Some(b'r')) => (2, self.peek(2)),
            _ => (1, self.peek(1)),
        };
        match second {
            Some(b'"') => {
                self.pos += letters;
                if b0 == b'r' || letters == 2 {
                    self.raw_string_body(start, 0)
                } else {
                    self.string(start)
                }
                true
            }
            Some(b'#') => {
                // `r#"…"#`-style raw string, or a raw identifier
                // `r#ident`. Count hashes, then decide by what follows.
                let mut hashes = 0usize;
                while self.src.get(self.pos + letters + hashes) == Some(&b'#') {
                    hashes += 1;
                }
                match self.src.get(self.pos + letters + hashes) {
                    Some(b'"') => {
                        self.pos += letters + hashes;
                        self.raw_string_body(start, hashes);
                        true
                    }
                    Some(&c) if b0 == b'r' && letters == 1 && hashes == 1 && is_ident_start(c) => {
                        // Raw identifier: `r#` + ident chars.
                        self.pos += 2;
                        while self.pos < self.src.len() && is_ident_continue(self.src[self.pos]) {
                            self.pos += 1;
                        }
                        self.push(TokenKind::Ident, start, self.line);
                        true
                    }
                    _ => false,
                }
            }
            Some(b'\'') if b0 == b'b' && letters == 1 => {
                // Byte char literal `b'x'`.
                self.pos += 1;
                self.char_literal(start);
                true
            }
            _ => false,
        }
    }

    /// Body of a raw string: position is at the opening `"`; consumes
    /// through `"` followed by `hashes` `#`s.
    fn raw_string_body(&mut self, start: usize, hashes: usize) {
        let start_line = self.line;
        self.pos += 1; // opening quote
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'"' => {
                    let mut h = 0usize;
                    while h < hashes && self.src.get(self.pos + 1 + h) == Some(&b'#') {
                        h += 1;
                    }
                    self.pos += 1;
                    if h == hashes {
                        self.pos += hashes;
                        break;
                    }
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokenKind::StrLit, start, start_line);
    }

    /// Plain (escaped) string body; position is at the opening `"`.
    /// `start` may be earlier (a `b`/`c` prefix).
    fn string(&mut self, start: usize) {
        let start_line = self.line;
        self.pos += 1;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos += 2,
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokenKind::StrLit, start, start_line);
    }

    /// A `'`: lifetime or char literal. The disambiguation rule:
    /// `'\…'` and `'X'` (one char then a closing quote) are chars;
    /// `'ident` not followed by a closing quote is a lifetime.
    fn quote(&mut self) {
        let start = self.pos;
        match self.peek(1) {
            Some(b'\\') => self.char_literal(start),
            Some(c) if is_ident_start(c) => {
                // Scan the identifier; a closing quote right after makes
                // it a char literal ('a'), otherwise it is a lifetime
                // ('a, 'static, the 'a in <'a>).
                let mut i = self.pos + 1;
                while i < self.src.len() && is_ident_continue(self.src[i]) {
                    i += 1;
                }
                if self.src.get(i) == Some(&b'\'') {
                    self.char_literal(start);
                } else {
                    self.pos = i;
                    self.push(TokenKind::Lifetime, start, self.line);
                }
            }
            _ => self.char_literal(start),
        }
    }

    /// Char literal body; position is at the opening `'` (or `start` at
    /// a `b` prefix). Consumes through the closing `'`.
    fn char_literal(&mut self, start: usize) {
        self.pos += 1; // opening quote
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos += 2,
                b'\'' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => break, // malformed; don't eat the file
                _ => self.pos += 1,
            }
        }
        self.push(TokenKind::CharLit, start, self.line);
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self.pos < self.src.len() && is_ident_continue(self.src[self.pos]) {
            self.pos += 1;
        }
        self.push(TokenKind::Ident, start, self.line);
    }

    /// Number literal: all radixes, underscores, float fractions and
    /// exponents, type suffixes. `0..10` must stay three tokens.
    fn number(&mut self) {
        let start = self.pos;
        self.pos += 1;
        // Radix-prefixed integers just consume alphanumerics.
        let radix =
            matches!(self.peek(0), Some(b'x') | Some(b'o') | Some(b'b')) && self.src[start] == b'0';
        if radix {
            self.pos += 1;
        }
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
        {
            // `1e5` / `2.5e-3` exponents: a sign directly after e/E
            // belongs to the number (decimal literals only).
            if !radix
                && matches!(self.src[self.pos], b'e' | b'E')
                && matches!(self.peek(1), Some(b'+') | Some(b'-'))
                && self.peek(2).map(|c| c.is_ascii_digit()).unwrap_or(false)
            {
                self.pos += 2;
            }
            self.pos += 1;
        }
        // A fraction part: `.` followed by a digit (so `0..10` and
        // `1.max(2)` don't glue).
        if !radix
            && self.peek(0) == Some(b'.')
            && self.peek(1).map(|c| c.is_ascii_digit()).unwrap_or(false)
        {
            self.pos += 1;
            while self.pos < self.src.len()
                && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
            {
                if matches!(self.src[self.pos], b'e' | b'E')
                    && matches!(self.peek(1), Some(b'+') | Some(b'-'))
                    && self.peek(2).map(|c| c.is_ascii_digit()).unwrap_or(false)
                {
                    self.pos += 2;
                }
                self.pos += 1;
            }
        }
        self.push(TokenKind::NumLit, start, self.line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let s = 'static; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::CharLit)
            .collect();
        assert_eq!(lifetimes.len(), 3, "{toks:?}"); // <'a>, &'a, 'static
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].1, "'a'");
    }

    #[test]
    fn escaped_char_literals() {
        let toks = kinds(r"let a = '\''; let b = '\n'; let c = '\u{1F600}';");
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::CharLit)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(chars, vec![r"'\''", r"'\n'", r"'\u{1F600}'"]);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still outer */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert_eq!(toks[1].1, "/* outer /* inner */ still outer */");
        assert!(toks[2].1 == "b");
    }

    #[test]
    fn raw_strings_do_not_end_at_inner_quotes() {
        let toks = kinds(r####"let s = r#"she said "hi" // not a comment"#; x"####);
        let strs: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::StrLit)
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains("not a comment"));
        assert!(toks.last().unwrap().1 == "x");
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#match = r#fn; r#\"raw\"#");
        assert_eq!(toks[1].0, TokenKind::Ident);
        assert_eq!(toks[1].1, "r#match");
        assert!(lex("let r#match = 1;")[1].is_ident("match"));
        assert_eq!(toks.last().unwrap().0, TokenKind::StrLit);
    }

    #[test]
    fn byte_and_c_strings() {
        let toks = kinds(r###"b"bytes" br#"raw bytes"# b'x' c"cstr""###);
        assert_eq!(
            toks.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![
                TokenKind::StrLit,
                TokenKind::StrLit,
                TokenKind::CharLit,
                TokenKind::StrLit
            ]
        );
    }

    #[test]
    fn numbers_and_ranges() {
        let toks = kinds("for i in 0..10 { let x = 1.5e-3f64; let y = 0xFF_u8; }");
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::NumLit)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5e-3f64", "0xFF_u8"]);
    }

    #[test]
    fn line_and_doc_comments_end_at_newline() {
        let toks = lex("/// doc\n//! inner\n// plain\ncode");
        assert_eq!(toks.len(), 4);
        assert_eq!(toks[0].kind, TokenKind::LineComment);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[2].line, 3);
        assert_eq!(toks[3].line, 4);
    }

    #[test]
    fn multiline_strings_track_lines() {
        let toks = lex("let s = \"a\nb\nc\";\nnext");
        let s = &toks[3];
        assert_eq!(s.kind, TokenKind::StrLit);
        assert_eq!(s.line, 1);
        assert_eq!(s.end_line, 3);
        assert_eq!(toks.last().unwrap().line, 4);
    }

    #[test]
    fn comment_like_content_inside_strings_is_not_a_comment() {
        let toks = kinds("let s = \"// not a comment /* nope */\"; done");
        assert!(toks
            .iter()
            .all(|(k, _)| !matches!(k, TokenKind::LineComment | TokenKind::BlockComment)));
        assert!(toks.last().unwrap().1 == "done");
    }
}
