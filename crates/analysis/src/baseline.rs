//! `analysis.toml` — the committed panic-budget baseline.
//!
//! Deliberately a tiny TOML subset (section headers + `key = integer`
//! entries + `#` comments), parsed by hand so the analyzer stays
//! dependency-free like the rest of the workspace. The only section the
//! checker reads today is `[panic_budget]`; unknown sections are
//! preserved semantically (parsed and ignored) so the format can grow.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Parsed baseline: `section -> key -> integer`.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    pub sections: BTreeMap<String, BTreeMap<String, u64>>,
}

impl Baseline {
    /// Per-crate panic budgets (empty map when the section is absent).
    pub fn panic_budget(&self) -> BTreeMap<String, u64> {
        self.sections
            .get("panic_budget")
            .cloned()
            .unwrap_or_default()
    }

    /// Parses the committed baseline. Errors carry a line number so a
    /// hand-edited file fails loudly instead of silently zeroing every
    /// budget.
    pub fn parse(src: &str) -> Result<Baseline, String> {
        let mut out = Baseline::default();
        let mut section: Option<String> = None;
        for (idx, raw) in src.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(format!("line {lineno}: unterminated section header"));
                };
                section = Some(name.trim().to_string());
                out.sections.entry(name.trim().to_string()).or_default();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {lineno}: expected `key = value`"));
            };
            let key = unquote(key.trim());
            let value: u64 = value
                .trim()
                .parse()
                .map_err(|_| format!("line {lineno}: value is not a non-negative integer"))?;
            let Some(section) = &section else {
                return Err(format!("line {lineno}: entry before any [section]"));
            };
            out.sections
                .entry(section.clone())
                .or_default()
                .insert(key, value);
        }
        Ok(out)
    }

    /// Renders a fresh baseline from measured counts (the
    /// `write-baseline` subcommand).
    pub fn render(panic_counts: &BTreeMap<String, usize>) -> String {
        let mut s = String::from(
            "# Panic-freedom budget, machine-checked by PF001\n\
             # (`cargo run -p privelet-analysis -- check`).\n\
             #\n\
             # One entry per crate: the number of *unwaived* panic sites\n\
             # (`.unwrap()`, `.expect(`, `panic!`, `todo!`, `unimplemented!`)\n\
             # in non-test library code. The budget only ratchets DOWN:\n\
             # going over fails the check; dropping under prints a reminder\n\
             # to lower the number here. To exempt a justified site, put\n\
             # `// lint:allow(panic): <reason>` on its line or the line\n\
             # above. Regenerate with `-- write-baseline` only after\n\
             # deliberately reviewing the new sites.\n\n[panic_budget]\n",
        );
        for (name, count) in panic_counts {
            let _ = writeln!(s, "\"{name}\" = {count}");
        }
        s
    }
}

fn strip_comment(line: &str) -> &str {
    // No string values in this subset, so `#` always starts a comment.
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn unquote(s: &str) -> String {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or(s)
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_keys_and_comments() {
        let b = Baseline::parse(
            "# header\n[panic_budget]\n\"privelet-core\" = 3 # trailing\nbare = 0\n\n[other]\nx = 7\n",
        )
        .unwrap();
        let budget = b.panic_budget();
        assert_eq!(budget.get("privelet-core"), Some(&3));
        assert_eq!(budget.get("bare"), Some(&0));
        assert_eq!(b.sections.get("other").and_then(|s| s.get("x")), Some(&7));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Baseline::parse("[oops\n").is_err());
        assert!(Baseline::parse("[s]\nnovalue\n").is_err());
        assert!(Baseline::parse("[s]\nk = notanumber\n").is_err());
        assert!(Baseline::parse("k = 1\n").is_err());
    }

    #[test]
    fn render_roundtrips() {
        let mut counts = BTreeMap::new();
        counts.insert("a".to_string(), 2usize);
        counts.insert("b-c".to_string(), 0usize);
        let rendered = Baseline::render(&counts);
        let back = Baseline::parse(&rendered).unwrap().panic_budget();
        assert_eq!(back.get("a"), Some(&2));
        assert_eq!(back.get("b-c"), Some(&0));
    }
}
