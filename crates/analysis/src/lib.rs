//! `privelet-analysis` — project-specific static analysis for the
//! privelet workspace.
//!
//! A dependency-free, hand-rolled Rust [`lexer`], a lightweight
//! file/item [`model`], and five [`lints`] that encode invariants
//! rustc and clippy cannot see:
//!
//! - **PB001** — the differential-privacy boundary: raw-count types
//!   never reach the serving crate (`Theorem 4`'s "one noise injection
//!   point" made structural).
//! - **US001 / US002** — unsafe discipline: every unsafe site is
//!   explained, every unsafe-free crate is pinned unsafe-free.
//! - **LD001 / LD002** — lock discipline: single-lock rule for the
//!   sharded cache, poison-robust lock handling.
//! - **FD001** — float determinism: no accumulation over
//!   `HashMap`/`HashSet` iteration order.
//! - **PF001** — panic budget: unwaived panic sites per crate against
//!   the committed [`baseline`] (`analysis.toml`), ratchet-down only.
//!
//! Run it as `cargo run -p privelet-analysis -- check`. See
//! `docs/static-analysis.md` for the lint catalog and waiver syntax.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod lexer;
pub mod lints;
pub mod model;
pub mod workspace;

use baseline::Baseline;
use lints::{CrateFindings, Diagnostic, PanicSite};
use model::FileModel;
use std::collections::BTreeMap;
use std::path::Path;

/// Result of a full workspace check.
#[derive(Debug, Default)]
pub struct CheckOutcome {
    /// Hard violations — any entry makes `check` exit nonzero.
    pub violations: Vec<Diagnostic>,
    /// Soft findings (budget drift, stale baseline entries) — reported,
    /// never fatal.
    pub warnings: Vec<String>,
    /// Measured unwaived panic sites per crate.
    pub panic_counts: BTreeMap<String, usize>,
    /// Every unwaived site, per crate (for `panics` listings).
    pub panic_sites: BTreeMap<String, Vec<PanicSite>>,
}

/// Lints the whole workspace under `root` against the baseline text
/// (pass `None` to skip PF001 budget enforcement, e.g. before a
/// baseline exists).
pub fn run_check(root: &Path, baseline: Option<&str>) -> Result<CheckOutcome, String> {
    let baseline = match baseline {
        Some(src) => Some(Baseline::parse(src).map_err(|e| format!("analysis.toml: {e}"))?),
        None => None,
    };
    let crates = workspace::discover(root).map_err(|e| format!("workspace discovery: {e}"))?;
    if crates.is_empty() {
        return Err("no workspace members found".to_string());
    }

    let mut outcome = CheckOutcome::default();
    let mut findings: BTreeMap<String, CrateFindings> = BTreeMap::new();
    for info in &crates {
        let parsed: Vec<(String, FileModel)> = info
            .files
            .iter()
            .map(|(path, src)| (path.clone(), FileModel::parse(src)))
            .collect();
        findings.insert(info.name.clone(), lints::lint_crate(info, &parsed));
    }

    for (name, f) in findings {
        outcome.violations.extend(f.diags);
        outcome
            .panic_counts
            .insert(name.clone(), f.panic_sites.len());
        outcome.panic_sites.insert(name, f.panic_sites);
    }

    if let Some(baseline) = baseline {
        let budget = baseline.panic_budget();
        for (name, &count) in &outcome.panic_counts {
            match budget.get(name) {
                Some(&allowed) if (count as u64) > allowed => {
                    // Over budget: fail, and name the sites so the new
                    // ones are findable without a separate run.
                    let sites = &outcome.panic_sites[name];
                    let listing: Vec<String> = sites
                        .iter()
                        .map(|s| format!("{}:{} ({})", s.file, s.line, s.what))
                        .collect();
                    outcome.violations.push(Diagnostic {
                        lint: "PF001",
                        file: "analysis.toml".to_string(),
                        line: 1,
                        message: format!(
                            "crate `{name}` has {count} unwaived panic sites, budget is \
                             {allowed} — waive new sites with `// lint:allow(panic): <reason>` \
                             or remove them; sites: {}",
                            listing.join(", ")
                        ),
                    });
                }
                Some(&allowed) if (count as u64) < allowed => {
                    outcome.warnings.push(format!(
                        "PF001: crate `{name}` is under budget ({count} < {allowed}) — \
                         ratchet analysis.toml down to {count}"
                    ));
                }
                Some(_) => {}
                None => {
                    if count > 0 {
                        outcome.violations.push(Diagnostic {
                            lint: "PF001",
                            file: "analysis.toml".to_string(),
                            line: 1,
                            message: format!(
                                "crate `{name}` has {count} unwaived panic sites but no \
                                 [panic_budget] entry"
                            ),
                        });
                    }
                }
            }
        }
        for stale in budget.keys() {
            if !outcome.panic_counts.contains_key(stale) {
                outcome.warnings.push(format!(
                    "PF001: baseline entry `{stale}` does not match any workspace crate — \
                     remove it from analysis.toml"
                ));
            }
        }
    }

    outcome
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    Ok(outcome)
}
