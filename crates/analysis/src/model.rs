//! A lightweight item model over the token stream.
//!
//! Just enough structure for the lints: which token ranges are
//! test-only (`#[cfg(test)]` / `#[test]` items), where `use`
//! declarations point, where `fn` bodies start and end, where `unsafe`
//! occurs, and the merged comment blocks that waivers and `SAFETY:`
//! notes live in. Deliberately not a parser — brace matching plus a
//! handful of keyword patterns cover everything the lints ask.

use crate::lexer::{lex, Token, TokenKind};

/// A maximal run of consecutive `//` comments (or one block comment),
/// merged so multi-line safety/waiver notes read as one text.
#[derive(Debug, Clone)]
pub struct CommentBlock {
    pub start_line: u32,
    pub end_line: u32,
    pub text: String,
}

/// One `use` declaration, rendered back to compact path text
/// (`use privelet_data::freq::FrequencyMatrix;` →
/// `privelet_data::freq::FrequencyMatrix`).
#[derive(Debug, Clone)]
pub struct UseDecl {
    pub path: String,
    pub line: u32,
    pub in_test: bool,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    pub line: u32,
    pub is_pub: bool,
    pub is_unsafe: bool,
    pub in_test: bool,
    /// Code-token index range of the signature: `fn` through the token
    /// before the body `{` (or the `;` of a bodyless declaration).
    pub sig: (usize, usize),
    /// Code-token index range strictly inside the body braces, when the
    /// fn has a body.
    pub body: Option<(usize, usize)>,
}

/// Kind of an `unsafe` occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    Block,
    Fn,
    Impl,
    Trait,
}

/// One `unsafe` token with its classification.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub line: u32,
    pub kind: UnsafeKind,
    pub in_test: bool,
}

/// The model of one source file.
#[derive(Debug)]
pub struct FileModel {
    /// Non-comment tokens, in order.
    pub code: Vec<Token>,
    /// Merged comment blocks, in order.
    pub comments: Vec<CommentBlock>,
    /// `code` indices covered by a `#[cfg(test)]` / `#[test]` item
    /// (half-open ranges).
    test_spans: Vec<(usize, usize)>,
    pub uses: Vec<UseDecl>,
    pub fns: Vec<FnItem>,
    pub unsafes: Vec<UnsafeSite>,
    /// True when the file declares `#![forbid(unsafe_code)]`.
    pub forbids_unsafe: bool,
}

impl FileModel {
    /// Lexes and models one file's source text.
    pub fn parse(src: &str) -> FileModel {
        let tokens = lex(src);
        let mut code = Vec::with_capacity(tokens.len());
        let mut comments: Vec<CommentBlock> = Vec::new();
        for t in tokens {
            if t.is_comment() {
                // Merge consecutive line comments on adjacent lines into
                // one block so multi-line notes read whole.
                if let Some(last) = comments.last_mut() {
                    if t.kind == TokenKind::LineComment && t.line == last.end_line + 1 {
                        last.end_line = t.end_line;
                        last.text.push('\n');
                        last.text.push_str(&t.text);
                        continue;
                    }
                }
                comments.push(CommentBlock {
                    start_line: t.line,
                    end_line: t.end_line,
                    text: t.text,
                });
            } else {
                code.push(t);
            }
        }
        let mut model = FileModel {
            test_spans: Vec::new(),
            uses: Vec::new(),
            fns: Vec::new(),
            unsafes: Vec::new(),
            forbids_unsafe: false,
            code,
            comments,
        };
        model.scan();
        model
    }

    /// True when code-token index `i` lies inside a test-only item.
    pub fn is_test_idx(&self, i: usize) -> bool {
        self.test_spans.iter().any(|&(lo, hi)| lo <= i && i < hi)
    }

    /// The nearest comment block that ends strictly above `line`.
    pub fn comment_above(&self, line: u32) -> Option<&CommentBlock> {
        self.comments.iter().rev().find(|c| c.end_line < line)
    }

    /// Any comment block overlapping exactly `line` (trailing comments).
    pub fn comment_on(&self, line: u32) -> Option<&CommentBlock> {
        self.comments
            .iter()
            .find(|c| c.start_line <= line && line <= c.end_line)
    }

    /// Index of the matching `}` for the `{` at code index `open`.
    /// Returns `code.len()` when unbalanced (truncated fixture).
    pub fn matching_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        for (i, t) in self.code.iter().enumerate().skip(open) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
        self.code.len()
    }

    fn scan(&mut self) {
        let n = self.code.len();
        let mut i = 0usize;
        while i < n {
            let t = &self.code[i];
            if t.is_punct('#') {
                i = self.scan_attr(i);
                continue;
            }
            if t.is_ident("use") {
                i = self.scan_use(i);
                continue;
            }
            if t.is_ident("fn") {
                i = self.scan_fn(i);
                continue;
            }
            if t.is_ident("unsafe") {
                self.scan_unsafe(i);
            }
            i += 1;
        }
    }

    /// Handles `#[...]` and `#![...]`: records forbid(unsafe_code), and
    /// marks the following item's span as test-only for `#[test]` /
    /// `#[cfg(test)]`. Returns the index after the attribute.
    fn scan_attr(&mut self, at: usize) -> usize {
        let mut i = at + 1;
        let inner = self.code.get(i).map(|t| t.is_punct('!')).unwrap_or(false);
        if inner {
            i += 1;
        }
        if !self.code.get(i).map(|t| t.is_punct('[')).unwrap_or(false) {
            return at + 1;
        }
        // Collect the attribute's tokens to the matching `]`.
        let mut depth = 0usize;
        let start = i;
        while i < self.code.len() {
            if self.code[i].is_punct('[') {
                depth += 1;
            } else if self.code[i].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        let attr: Vec<&Token> = self.code[start + 1..i.saturating_sub(1)].iter().collect();
        let root = attr.first().map(|t| t.ident_text().to_string());
        let has = |kw: &str| attr.iter().any(|t| t.is_ident(kw));
        if inner {
            if root.as_deref() == Some("forbid") && has("unsafe_code") {
                self.forbids_unsafe = true;
            }
            return i;
        }
        let testish = match root.as_deref() {
            Some("test") => true,
            // cfg(test) — but not cfg(not(test)). cfg(any(test, …)) is
            // treated as test-only: conservative for skip-style lints.
            Some("cfg") => has("test") && !has("not"),
            _ => false,
        };
        if testish {
            // The attribute covers the next item: through the matching
            // `}` when a brace opens before any top-level `;`.
            let mut j = i;
            let mut span_end = None;
            while j < self.code.len() {
                let t = &self.code[j];
                if t.is_punct('{') {
                    span_end = Some(self.matching_brace(j) + 1);
                    break;
                }
                if t.is_punct(';') {
                    span_end = Some(j + 1);
                    break;
                }
                j += 1;
            }
            self.test_spans
                .push((at, span_end.unwrap_or(self.code.len())));
        }
        i
    }

    fn scan_use(&mut self, at: usize) -> usize {
        let line = self.code[at].line;
        let mut path = String::new();
        let mut i = at + 1;
        while i < self.code.len() && !self.code[i].is_punct(';') {
            let t = &self.code[i];
            let sep = matches!(t.kind, TokenKind::Ident)
                && path
                    .chars()
                    .next_back()
                    .map(|c| c.is_alphanumeric() || c == '_')
                    .unwrap_or(false);
            if sep {
                path.push(' ');
            }
            path.push_str(&t.text);
            i += 1;
        }
        self.uses.push(UseDecl {
            path,
            line,
            in_test: self.is_test_idx(at),
        });
        i + 1
    }

    fn scan_fn(&mut self, at: usize) -> usize {
        let name = self
            .code
            .get(at + 1)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.ident_text().to_string())
            .unwrap_or_default();
        // Qualifiers walk back from `fn` over the item prefix (stop at
        // any statement/item boundary).
        let mut is_pub = false;
        let mut is_unsafe = false;
        let mut k = at;
        while k > 0 {
            k -= 1;
            let t = &self.code[k];
            match t.ident_text() {
                "pub" => {
                    // `pub(crate)` / `pub(super)` are not public API.
                    is_pub = !self
                        .code
                        .get(k + 1)
                        .map(|n| n.is_punct('('))
                        .unwrap_or(false);
                    continue;
                }
                "const" | "async" | "extern" => continue,
                "unsafe" => {
                    is_unsafe = true;
                    continue;
                }
                _ => {}
            }
            // Also step over an ABI string (`extern "C" fn`) and the
            // closing of `pub(crate)`.
            if t.kind == TokenKind::StrLit || t.is_punct(')') || t.is_punct('(') {
                if t.is_punct(')') || t.is_punct('(') {
                    // Only keep walking for pub(...)-style groups.
                    if self
                        .code
                        .get(k.wrapping_sub(1))
                        .map(|p| p.is_ident("pub") || p.is_ident("crate") || p.is_ident("super"))
                        .unwrap_or(false)
                        || t.is_punct('(')
                    {
                        continue;
                    }
                }
                if t.kind == TokenKind::StrLit {
                    continue;
                }
            }
            break;
        }
        // Signature runs to the body `{` or a `;`.
        let mut i = at + 1;
        let mut body = None;
        while i < self.code.len() {
            let t = &self.code[i];
            if t.is_punct('{') {
                let close = self.matching_brace(i);
                body = Some((i + 1, close));
                break;
            }
            if t.is_punct(';') {
                break;
            }
            i += 1;
        }
        let sig_end = i;
        self.fns.push(FnItem {
            name,
            line: self.code[at].line,
            is_pub,
            is_unsafe,
            in_test: self.is_test_idx(at),
            sig: (at, sig_end),
            body,
        });
        // Continue scanning *inside* the body too (nested fns, unsafe
        // blocks, inner uses) — so return just past the `fn` keyword.
        at + 1
    }

    fn scan_unsafe(&mut self, at: usize) {
        let kind = match self.code.get(at + 1) {
            Some(t) if t.is_punct('{') => UnsafeKind::Block,
            Some(t) if t.is_ident("impl") => UnsafeKind::Impl,
            Some(t) if t.is_ident("trait") => UnsafeKind::Trait,
            _ => UnsafeKind::Fn,
        };
        self.unsafes.push(UnsafeSite {
            line: self.code[at].line,
            kind,
            in_test: self.is_test_idx(at),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_spans_cover_cfg_test_modules() {
        let m = FileModel::parse(
            "use a::B;\nfn live() {}\n#[cfg(test)]\nmod tests {\n use c::D;\n fn t() {}\n}\n",
        );
        assert_eq!(m.uses.len(), 2);
        assert!(!m.uses[0].in_test);
        assert!(m.uses[1].in_test);
        let t = m.fns.iter().find(|f| f.name == "t").unwrap();
        assert!(t.in_test);
        assert!(!m.fns.iter().find(|f| f.name == "live").unwrap().in_test);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_span() {
        let m = FileModel::parse("#[cfg(not(test))]\nfn live() {}\n");
        assert!(!m.fns[0].in_test);
    }

    #[test]
    fn pub_and_restricted_visibility() {
        let m = FileModel::parse(
            "pub fn api() {}\npub(crate) fn internal() {}\nfn private() {}\npub unsafe fn scary() {}\n",
        );
        let vis: Vec<(String, bool, bool)> = m
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.is_pub, f.is_unsafe))
            .collect();
        assert_eq!(
            vis,
            vec![
                ("api".into(), true, false),
                ("internal".into(), false, false),
                ("private".into(), false, false),
                ("scary".into(), true, true),
            ]
        );
    }

    #[test]
    fn forbid_unsafe_and_unsafe_sites() {
        let m = FileModel::parse("#![forbid(unsafe_code)]\nfn f() {}\n");
        assert!(m.forbids_unsafe);
        let m = FileModel::parse(
            "unsafe impl Send for X {}\nfn f() { unsafe { g() } }\nunsafe fn g() {}\n",
        );
        assert!(!m.forbids_unsafe);
        let kinds: Vec<UnsafeKind> = m.unsafes.iter().map(|u| u.kind).collect();
        assert_eq!(
            kinds,
            vec![UnsafeKind::Impl, UnsafeKind::Block, UnsafeKind::Fn]
        );
    }

    #[test]
    fn use_paths_render_compactly() {
        let m =
            FileModel::parse("use privelet_data::freq::FrequencyMatrix;\nuse a::{b, c as d};\n");
        assert_eq!(m.uses[0].path, "privelet_data::freq::FrequencyMatrix");
        assert_eq!(m.uses[1].path, "a::{b,c as d}");
    }

    #[test]
    fn fn_bodies_nest() {
        let m = FileModel::parse("fn outer() { fn inner() { x(); } y(); }\n");
        assert_eq!(m.fns.len(), 2);
        let outer = &m.fns[0];
        let inner = &m.fns[1];
        let (ob, oe) = outer.body.unwrap();
        let (ib, ie) = inner.body.unwrap();
        assert!(ob < ib && ie <= oe);
    }
}
