//! Quickstart: the paper's running example (Tables I and II).
//!
//! Builds the eight medical records of Table I, derives the frequency
//! matrix of Table II, publishes it under ε-differential privacy with both
//! Basic (Dwork et al.) and Privelet, and answers the introduction's
//! example query — "the number of diabetes patients with age under 50" —
//! on each published matrix. Finally it publishes the *coefficient-domain*
//! release and serves the same query straight from the noisy coefficients,
//! reading O(log m) of them per dimension instead of reconstructing the
//! matrix.
//!
//! Run with: `cargo run --example quickstart`

use privelet_repro::core::mechanism::{
    publish_basic, publish_coefficients, publish_privelet, PriveletConfig,
};
use privelet_repro::data::medical::{medical_example, AGE_GROUPS, DIABETES};
use privelet_repro::data::FrequencyMatrix;
use privelet_repro::eval::ExactEvaluate;
use privelet_repro::query::{AnswerEngine, CoefficientAnswerer, Predicate, RangeQuery};

fn main() {
    // Table I: the input relation.
    let table = medical_example();
    println!(
        "Table I — {} medical records (Age, Has Diabetes?)",
        table.len()
    );

    // Table II: its frequency matrix.
    let fm = FrequencyMatrix::from_table(&table).expect("frequency matrix");
    println!("\nTable II — frequency matrix ({} cells):", fm.cell_count());
    println!("{:>8} {:>6} {:>6}", "Age", DIABETES[0], DIABETES[1]);
    for (age, label) in AGE_GROUPS.iter().enumerate() {
        let yes = fm.matrix().get(&[age, 0]).unwrap();
        let no = fm.matrix().get(&[age, 1]).unwrap();
        println!("{label:>8} {yes:>6} {no:>6}");
    }

    // The introduction's query: diabetes patients with age under 50 =
    // age groups {<30, 30-39, 40-49} x {Yes}.
    let hierarchy = fm.schema().attr(1).domain().hierarchy().unwrap().clone();
    let query = RangeQuery::new(vec![
        Predicate::Range { lo: 0, hi: 2 },
        Predicate::Node {
            node: hierarchy.leaf_node(0),
        },
    ]);
    let exact = query.evaluate(&fm).unwrap();
    println!("\nquery: COUNT(*) WHERE Age < 50 AND Diabetes = Yes");
    println!("exact answer: {exact}");

    // Publish under ε = 1 with both mechanisms and answer on the noisy
    // matrices. (A single tiny table is the worst case for utility — this
    // is a wiring demo, not a benchmark; see the benches for the real
    // error profiles.)
    let epsilon = 1.0;
    let basic = publish_basic(&fm, epsilon, 2024).expect("basic publish");
    let out =
        publish_privelet(&fm, &PriveletConfig::pure(epsilon, 2024)).expect("privelet publish");

    println!("\nε = {epsilon}:");
    println!(
        "  Basic:     answer = {:+.2}   (Lap(2/ε) per cell)",
        query.evaluate(&basic).unwrap()
    );
    println!(
        "  Privelet:  answer = {:+.2}   (ρ = {}, λ = {}, {} coefficients)",
        query.evaluate(&out.matrix).unwrap(),
        out.meta.rho,
        out.meta.lambda,
        out.coefficient_count
    );
    println!(
        "  Privelet per-query variance bound: {:.1}",
        out.meta.variance_bound
    );

    // Optional count post-processing (pure function of the release).
    let mut rounded = out.matrix.clone();
    rounded.matrix_mut().round_nonnegative();
    println!(
        "  Privelet (rounded to counts): answer = {}",
        query.evaluate(&rounded).unwrap()
    );

    // Serve-from-coefficients: publish the noisy coefficient matrix
    // instead of inverting it, and answer the query as a sparse dot
    // against the coefficients — per-query cost O(log m) per dimension,
    // no O(m) reconstruction in the serving path. Same seed ⇒ the same
    // noise stream as the Privelet publish above, so the answer matches
    // the inverse-transform path to floating-point rounding.
    let release = publish_coefficients(&fm, &PriveletConfig::pure(epsilon, 2024))
        .expect("coefficient publish");
    let answerer = CoefficientAnswerer::from_output(&release).expect("coefficient answerer");
    println!(
        "\nserve-from-coefficients ({} noisy coefficients kept, matrix never rebuilt):",
        release.coefficient_count()
    );
    let (coeff_answer, support) = answerer.answer_with_support(&query).unwrap();
    println!(
        "  coefficient-domain answer = {coeff_answer:+.2} (reads {support} of {} coefficients)",
        release.coefficient_count()
    );
    let diff = (coeff_answer - query.evaluate(&out.matrix).unwrap()).abs();
    assert!(diff < 1e-9, "serving paths must agree; diff = {diff}");
    println!("  agrees with the inverse-transform path to {diff:.1e}");

    // Error-accounted serving: every answer knows its own exact noise
    // std-dev (Var = 2λ²·∏ factors, a pure function of public transform
    // parameters — no privacy cost), so the release can report a
    // confidence interval next to each count.
    let annotated = answerer.answer_with_error(&query).unwrap();
    assert_eq!(annotated.value, coeff_answer, "same supports, same dot");
    let (lo95, hi95) = annotated
        .interval(0.95)
        .expect("0.95 is a valid confidence level");
    println!(
        "  error bars: {:+.2} ± {:.2} std dev; 95% interval [{lo95:+.2}, {hi95:+.2}]",
        annotated.value, annotated.std_dev
    );
    assert!(
        lo95 <= exact && exact <= hi95,
        "this demo's interval happens to cover the exact answer"
    );

    // Batched serving: a small OLAP-style workload (the same age interval
    // drilled across both diabetes values, plus the total) compiled into
    // one QueryPlan. The planner interns each distinct per-dimension
    // support once, so repeated predicate intervals cost one derivation
    // for the whole batch.
    let workload = vec![
        query.clone(),
        RangeQuery::new(vec![
            Predicate::Range { lo: 0, hi: 2 },
            Predicate::Node {
                node: hierarchy.leaf_node(1),
            },
        ]),
        RangeQuery::new(vec![Predicate::Range { lo: 0, hi: 2 }, Predicate::All]),
        RangeQuery::all(2),
    ];
    let plan = answerer.plan(&workload).expect("plan compiles");
    let batch = answerer.answer_plan(&plan).expect("plan executes");
    println!(
        "\nbatched serving ({} queries compiled into one plan):",
        plan.len()
    );
    println!(
        "  supports: {} requested, {} derived (dedup ratio {:.0}%)",
        plan.support_requests(),
        plan.distinct_supports(),
        100.0 * plan.dedup_ratio()
    );
    for (q, a) in workload.iter().zip(&batch) {
        // Plan vs online: 1e-12 relative, not bitwise — the plan's arena
        // kernel may sum supports in a different order than the online
        // dot (docs/architecture.md summation-order policy).
        let online = answerer.answer(q).unwrap();
        assert!(
            (online - a).abs() <= 1e-12 * online.abs().max(1.0),
            "batch must equal the per-query loop: {a} vs {online}"
        );
    }
    println!(
        "  answers: {:?}",
        batch
            .iter()
            .map(|a| (a * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    let diagnostics = answerer.diagnostics();
    let cache = diagnostics.cache.expect("coefficient engine has a cache");
    println!(
        "  engine \"{}\": {} coefficients held, online cache {} hits / {} misses",
        diagnostics.engine, diagnostics.build_cells, cache.hits, cache.misses
    );
}
