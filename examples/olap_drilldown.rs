//! OLAP-style roll-up / drill-down over a published matrix.
//!
//! The paper motivates range-count queries with OLAP navigation (§II-A):
//! nominal predicates select either a hierarchy node's whole subtree
//! (roll-up) or individual leaves (drill-down). This example publishes a
//! 1-D Occupation-like table once and then navigates the hierarchy,
//! showing how the nominal wavelet transform keeps *every* level of the
//! drill-down accurate under one privacy budget.
//!
//! Run with: `cargo run --release --example olap_drilldown`

use privelet_repro::core::bounds::eq6_nominal_bound;
use privelet_repro::core::mechanism::{publish_privelet, PriveletConfig};
use privelet_repro::data::distributions::zipf_weights;
use privelet_repro::data::schema::{Attribute, Schema};
use privelet_repro::data::FrequencyMatrix;
use privelet_repro::hierarchy::builder::three_level;
use privelet_repro::matrix::NdMatrix;
use privelet_repro::query::{Predicate, RangeQuery};

fn main() {
    // An Occupation attribute: 60 occupations in 6 groups (height-3
    // hierarchy, like Table III's Occupation at small scale).
    let hierarchy = three_level(60, 6).expect("hierarchy");
    let schema = Schema::new(vec![Attribute::nominal("Occupation", hierarchy.clone())]).unwrap();

    // Zipf-distributed workforce of 100 000 people.
    let weights = zipf_weights(60, 1.0);
    let total: f64 = weights.iter().sum();
    let counts: Vec<f64> = weights
        .iter()
        .map(|w| (w / total * 100_000.0).round())
        .collect();
    let n: f64 = counts.iter().sum();
    let fm =
        FrequencyMatrix::from_parts(schema, NdMatrix::from_vec(&[60], counts).unwrap()).unwrap();

    let epsilon = 0.5;
    let out = publish_privelet(&fm, &PriveletConfig::pure(epsilon, 11)).expect("publish");
    println!(
        "published {n} tuples over 60 occupations at ε = {epsilon} \
         (variance bound {:.0} = Eq. 6's {:.0})",
        out.variance_bound,
        eq6_nominal_bound(hierarchy.height(), epsilon),
    );

    let answer = |node: usize| -> (f64, f64) {
        let q = RangeQuery::new(vec![Predicate::Node { node }]);
        (q.evaluate(&fm).unwrap(), q.evaluate(&out.matrix).unwrap())
    };

    // Roll-up: the root = total workforce.
    let (exact, noisy) = answer(hierarchy.root());
    println!("\nroll-up to ALL: exact {exact:>8.0}  noisy {noisy:>10.1}");

    // Level 2: every occupation group.
    println!("\ngroup totals (drill-down level 2):");
    println!(
        "{:>8} {:>10} {:>12} {:>10}",
        "group", "exact", "noisy", "rel.err"
    );
    for &g in &hierarchy.nodes_at_level(2) {
        let (exact, noisy) = answer(g);
        println!(
            "{:>8} {exact:>10.0} {noisy:>12.1} {:>9.2}%",
            hierarchy.label(g),
            100.0 * (noisy - exact).abs() / exact.max(1.0)
        );
    }

    // Drill into the largest group's members.
    let largest = hierarchy.nodes_at_level(2)[0];
    println!(
        "\ndrill-down into group {} (members {}..{}):",
        hierarchy.label(largest),
        hierarchy.leaf_range(largest).0,
        hierarchy.leaf_range(largest).1
    );
    println!("{:>8} {:>10} {:>12}", "leaf", "exact", "noisy");
    let (lo, hi) = hierarchy.leaf_range(largest);
    for pos in lo..=hi {
        let (exact, noisy) = answer(hierarchy.leaf_node(pos));
        println!(
            "{:>8} {exact:>10.0} {noisy:>12.1}",
            hierarchy.label(hierarchy.leaf_node(pos))
        );
    }

    // Consistency remark: after mean subtraction the noisy group total and
    // the sum of its noisy members agree (a property of the nominal
    // transform's reconstruction).
    let (_, group_noisy) = answer(largest);
    let member_sum: f64 = (lo..=hi).map(|p| answer(hierarchy.leaf_node(p)).1).sum();
    println!(
        "\ngroup total {group_noisy:.3} vs sum of members {member_sum:.3} \
         (difference {:.2e} — the release is internally consistent)",
        (group_noisy - member_sum).abs()
    );
}
