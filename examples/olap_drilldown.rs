//! OLAP-style roll-up / drill-down served from the coefficient domain.
//!
//! The paper motivates range-count queries with OLAP navigation (§II-A):
//! nominal predicates select either a hierarchy node's whole subtree
//! (roll-up) or individual leaves (drill-down). This example publishes a
//! 1-D Occupation-like table once **in the coefficient domain** and then
//! navigates the hierarchy through the unified serving engine: the whole
//! dashboard (root, every group, every member of the largest group) is
//! compiled into one `QueryPlan` and answered as sparse dots against the
//! noisy coefficients — the matrix is never reconstructed — and a second
//! "refresh" of the same dashboard runs through the online support cache
//! to show the repeat-traffic amortization.
//!
//! Run with: `cargo run --release --example olap_drilldown`

use privelet_repro::core::bounds::eq6_nominal_bound;
use privelet_repro::core::mechanism::{publish_coefficients, PriveletConfig};
use privelet_repro::data::distributions::zipf_weights;
use privelet_repro::data::schema::{Attribute, Schema};
use privelet_repro::data::FrequencyMatrix;
use privelet_repro::eval::ExactEvaluate;
use privelet_repro::hierarchy::builder::three_level;
use privelet_repro::matrix::NdMatrix;
use privelet_repro::query::{CoefficientAnswerer, Predicate, RangeQuery};

fn main() {
    // An Occupation attribute: 60 occupations in 6 groups (height-3
    // hierarchy, like Table III's Occupation at small scale).
    let hierarchy = three_level(60, 6).expect("hierarchy");
    let schema = Schema::new(vec![Attribute::nominal("Occupation", hierarchy.clone())]).unwrap();

    // Zipf-distributed workforce of 100 000 people.
    let weights = zipf_weights(60, 1.0);
    let total: f64 = weights.iter().sum();
    let counts: Vec<f64> = weights
        .iter()
        .map(|w| (w / total * 100_000.0).round())
        .collect();
    let n: f64 = counts.iter().sum();
    let fm =
        FrequencyMatrix::from_parts(schema, NdMatrix::from_vec(&[60], counts).unwrap()).unwrap();

    let epsilon = 0.5;
    let release = publish_coefficients(&fm, &PriveletConfig::pure(epsilon, 11)).expect("publish");
    let answerer = CoefficientAnswerer::from_output(&release).expect("answerer");
    println!(
        "published {n} tuples over 60 occupations at ε = {epsilon} \
         ({} noisy coefficients, matrix never rebuilt; variance bound {:.0} = Eq. 6's {:.0})",
        release.coefficient_count(),
        release.meta.variance_bound,
        eq6_nominal_bound(hierarchy.height(), epsilon),
    );

    // The whole dashboard as one batch: root roll-up, every group total,
    // every member of the largest group, and the group total again (the
    // consistency check re-asks it — a repeat the planner dedups).
    let node_query = |node: usize| RangeQuery::new(vec![Predicate::Node { node }]);
    let groups = hierarchy.nodes_at_level(2);
    let largest = groups[0];
    let (leaf_lo, leaf_hi) = hierarchy.leaf_range(largest);
    let mut dashboard = vec![node_query(hierarchy.root())];
    dashboard.extend(groups.iter().map(|&g| node_query(g)));
    dashboard.extend((leaf_lo..=leaf_hi).map(|p| node_query(hierarchy.leaf_node(p))));
    dashboard.push(node_query(largest));

    let plan = answerer.plan(&dashboard).expect("plan compiles");
    let noisy = answerer.answer_plan(&plan).expect("plan executes");
    println!(
        "\ncompiled the {}-query dashboard into one plan: {} supports \
         requested, {} derived (dedup ratio {:.0}%)",
        plan.len(),
        plan.support_requests(),
        plan.distinct_supports(),
        100.0 * plan.dedup_ratio()
    );

    let exact = |node: usize| node_query(node).evaluate(&fm).unwrap();

    // Roll-up: the root = total workforce.
    println!(
        "\nroll-up to ALL: exact {:>8.0}  noisy {:>10.1}",
        exact(hierarchy.root()),
        noisy[0]
    );

    // Level 2: every occupation group.
    println!("\ngroup totals (drill-down level 2):");
    println!(
        "{:>8} {:>10} {:>12} {:>10}",
        "group", "exact", "noisy", "rel.err"
    );
    for (i, &g) in groups.iter().enumerate() {
        let want = exact(g);
        let got = noisy[1 + i];
        println!(
            "{:>8} {want:>10.0} {got:>12.1} {:>9.2}%",
            hierarchy.label(g),
            100.0 * (got - want).abs() / want.max(1.0)
        );
    }

    // Drill into the largest group's members.
    println!(
        "\ndrill-down into group {} (members {leaf_lo}..{leaf_hi}):",
        hierarchy.label(largest),
    );
    println!("{:>8} {:>10} {:>12}", "leaf", "exact", "noisy");
    let member_base = 1 + groups.len();
    for (i, pos) in (leaf_lo..=leaf_hi).enumerate() {
        let leaf = hierarchy.leaf_node(pos);
        println!(
            "{:>8} {:>10.0} {:>12.1}",
            hierarchy.label(leaf),
            exact(leaf),
            noisy[member_base + i]
        );
    }

    // Consistency remark: after mean subtraction the noisy group total and
    // the sum of its noisy members agree (a property of the nominal
    // transform's reconstruction).
    let group_noisy = noisy[noisy.len() - 1];
    let member_sum: f64 = noisy[member_base..noisy.len() - 1].iter().sum();
    println!(
        "\ngroup total {group_noisy:.3} vs sum of members {member_sum:.3} \
         (difference {:.2e} — the release is internally consistent)",
        (group_noisy - member_sum).abs()
    );

    // Dashboard refreshes, one query at a time (the online path; the
    // batch plan keeps its supports in its own arena). The first refresh
    // fills the LRU support cache; from the second refresh on, every
    // per-dimension support is served from memory.
    let refreshed: Vec<f64> = dashboard
        .iter()
        .map(|q| answerer.answer(q).unwrap())
        .collect();
    // Online vs the plan's arena kernel: 1e-12 relative, not bitwise
    // (docs/architecture.md summation-order policy).
    for (r, n) in refreshed.iter().zip(&noisy) {
        assert!(
            (r - n).abs() <= 1e-12 * n.abs().max(1.0),
            "refresh must reproduce the batch: {r} vs {n}"
        );
    }
    let first = answerer.cache_stats();
    let again: Vec<f64> = dashboard
        .iter()
        .map(|q| answerer.answer(q).unwrap())
        .collect();
    // Online vs online (cached): bit-identical.
    assert_eq!(again, refreshed);
    let second = answerer.cache_stats();
    println!(
        "\nonline refreshes: first warmed the cache ({} misses), the \
         second hit it on all {} lookups (overall hit rate {:.0}%)",
        first.misses,
        second.hits - first.hits,
        100.0 * second.hit_rate()
    );
}
