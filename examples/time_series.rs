//! Private time-series range counts with the 1-D Haar instantiation (§IV).
//!
//! A hospital publishes hourly admission counts for a year (8 760 ordinal
//! buckets). Analysts ask window queries — "admissions in week 12", "during
//! March", "around the outbreak" — i.e. exactly the range-count workload
//! Privelet optimizes. This example publishes once under ε-DP with the
//! three 1-D mechanisms and compares window-query accuracy across window
//! lengths.
//!
//! Run with: `cargo run --release --example time_series`

use privelet_repro::core::bounds::eq4_ordinal_bound;
use privelet_repro::core::mechanism::{
    publish_basic, publish_hierarchical_1d, publish_privelet, PriveletConfig,
};
use privelet_repro::core::SlidingWindowRelease;
use privelet_repro::data::schema::{Attribute, Schema};
use privelet_repro::data::FrequencyMatrix;
use privelet_repro::eval::ExactEvaluate;
use privelet_repro::matrix::NdMatrix;
use privelet_repro::noise::derive_rng;
use privelet_repro::query::{ConcurrentEngine, Predicate, RangeQuery};
use rand::Rng;
use std::collections::BTreeSet;
use std::thread;

const HOURS: usize = 24 * 365;

fn main() {
    // Synthetic admissions: a daily cycle, a weekly cycle, a winter bump,
    // and an "outbreak" spike in autumn.
    let counts: Vec<f64> = (0..HOURS)
        .map(|h| {
            let hour_of_day = (h % 24) as f64;
            let day = h / 24;
            let daily = 6.0 + 4.0 * ((hour_of_day - 14.0) / 24.0 * std::f64::consts::TAU).cos();
            let weekly = if day % 7 >= 5 { 1.3 } else { 1.0 };
            let seasonal = 1.0 + 0.3 * ((day as f64) / 365.0 * std::f64::consts::TAU).cos();
            let outbreak = if (260..275).contains(&day) { 2.2 } else { 1.0 };
            (daily * weekly * seasonal * outbreak).round().max(0.0)
        })
        .collect();
    let n: f64 = counts.iter().sum();

    let schema = Schema::new(vec![Attribute::ordinal("hour", HOURS)]).unwrap();
    let fm =
        FrequencyMatrix::from_parts(schema, NdMatrix::from_vec(&[HOURS], counts).unwrap()).unwrap();

    let epsilon = 0.5;
    let basic = publish_basic(&fm, epsilon, 77).unwrap();
    let privelet = publish_privelet(&fm, &PriveletConfig::pure(epsilon, 77)).unwrap();
    let hier = publish_hierarchical_1d(&fm, epsilon, 77).unwrap();

    println!("published {n:.0} admissions over {HOURS} hourly buckets at ε = {epsilon}");
    println!(
        "Privelet variance bound (Eq. 4): {:.0}  [m pads to {}]",
        eq4_ordinal_bound(HOURS, epsilon),
        HOURS.next_power_of_two()
    );

    // Window queries of increasing length, 200 random placements each.
    println!("\nmean |error| by window length (hours), 200 random windows each:");
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>12}",
        "window", "exact mean", "Basic", "Privelet", "Hierarchical"
    );
    let mut rng = derive_rng(9, 9);
    for window in [6usize, 24, 7 * 24, 30 * 24, 90 * 24] {
        let (mut eb, mut ep, mut eh, mut mean_exact) = (0.0, 0.0, 0.0, 0.0);
        let trials = 200;
        for _ in 0..trials {
            let lo = rng.random_range(0..HOURS - window);
            let q = RangeQuery::new(vec![Predicate::Range {
                lo,
                hi: lo + window - 1,
            }]);
            let act = q.evaluate(&fm).unwrap();
            mean_exact += act;
            eb += (q.evaluate(&basic).unwrap() - act).abs();
            ep += (q.evaluate(&privelet.matrix).unwrap() - act).abs();
            eh += (q.evaluate(&hier).unwrap() - act).abs();
        }
        let t = trials as f64;
        println!(
            "{window:>8} {:>12.0} {:>12.1} {:>14.1} {:>12.1}",
            mean_exact / t,
            eb / t,
            ep / t,
            eh / t
        );
    }
    println!(
        "\nBasic's window error grows like sqrt(window); the two polylog\n\
         mechanisms stay nearly flat — the paper's headline, on time series."
    );

    // ---- Streaming ingest: a 4-week sliding window, week by week. ----
    //
    // Instead of republishing from scratch every time new hours land, a
    // `SlidingWindowRelease` keeps the exact Haar coefficients current
    // for "admissions in the last 4 weeks": each week's 168 hourly
    // counts arrive as ONE coalesced batch (`apply_increments` walks the
    // dirty coefficient set once, not 168 leaf-to-root paths), and a
    // week that slides out of the window replays its logged increments
    // negated — the same dirty-set walk, run backwards. Noise is drawn
    // only at epoch boundaries, each debiting its ε from a lifetime
    // budget ledger (sequential composition). The serving tier rolls to
    // the new epoch with `ConcurrentEngine::advance_epoch` while keeping
    // its support cache warm: supports are data-independent, so nothing
    // is re-derived across epochs.
    println!("\nsliding window: last 4 weeks, one epoch per week, ε = 0.25 each, budget 2.0");
    let total_epsilon = 2.0;
    let epoch_epsilon = 0.25;
    let window_weeks = 4usize;
    let zeros = FrequencyMatrix::from_parts(
        fm.schema().clone(),
        NdMatrix::from_vec(&[HOURS], vec![0.0; HOURS]).unwrap(),
    )
    .unwrap();
    let mut release =
        SlidingWindowRelease::new(&zeros, &BTreeSet::new(), total_epsilon, window_weeks).unwrap();
    println!(
        "  per-cell touch bound: {} of {} coefficients (⌈log₂ m⌉ + 1)",
        release.release().touch_bound(),
        release.release().exact_coefficients().as_slice().len()
    );

    let mut engine: Option<ConcurrentEngine> = None;
    println!(
        "{:>6} {:>8} {:>10} {:>12} {:>12} {:>8} {:>10} {:>10}",
        "week", "batch", "written", "window sum", "exact", "weeks", "ε spent", "cache"
    );
    for week in 0..6usize {
        // The week's hourly counts arrive as one coalesced batch...
        let increments: Vec<(Vec<usize>, f64)> = (week * 168..(week + 1) * 168)
            .map(|hour| (vec![hour], fm.matrix().get(&[hour]).unwrap()))
            .collect();
        let report = release.apply_increments(&increments).unwrap();
        // ...and the epoch boundary expires week - 4 (if any), then
        // draws fresh noise under its own ε.
        let out = release
            .advance_epoch(epoch_epsilon, 1000 + week as u64)
            .unwrap();
        engine = Some(match engine {
            // The sharded support cache is *shared* across the bump.
            Some(prev) => prev.advance_epoch(&out).unwrap(),
            None => ConcurrentEngine::from_output(&out).unwrap(),
        });
        let serving = engine.as_ref().unwrap();

        // The whole published table is the windowed sum. Served
        // concurrently: both analyst threads read the epoch just
        // published and must agree bitwise.
        let whole = RangeQuery::new(vec![Predicate::Range {
            lo: 0,
            hi: HOURS - 1,
        }]);
        let answers: Vec<f64> = thread::scope(|s| {
            (0..2)
                .map(|_| {
                    let eng = serving.clone();
                    let q = &whole;
                    s.spawn(move || eng.answer(q).unwrap())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(answers[0].to_bits(), answers[1].to_bits());
        let window_lo = (week + 1).saturating_sub(window_weeks) * 168;
        let exact_window = RangeQuery::new(vec![Predicate::Range {
            lo: window_lo,
            hi: (week + 1) * 168 - 1,
        }])
        .evaluate(&fm)
        .unwrap();
        let stats = serving.cache_stats();
        println!(
            "{week:>6} {:>8} {:>10} {:>12.1} {:>12.0} {:>8} {:>10.2} {:>7}h/{}m",
            report.increments,
            report.coefficients_written,
            answers[0],
            exact_window,
            release.retained_epochs(),
            release.ledger().spent(),
            stats.hits,
            stats.misses
        );
    }

    // The ledger refuses an over-draw *before* sealing, expiring or
    // drawing anything.
    let remaining = release.ledger().remaining();
    let err = release.advance_epoch(remaining + 0.5, 9999).unwrap_err();
    println!("  over-spend refused: {err}  (remaining ε = {remaining:.2})");
}
