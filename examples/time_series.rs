//! Private time-series range counts with the 1-D Haar instantiation (§IV).
//!
//! A hospital publishes hourly admission counts for a year (8 760 ordinal
//! buckets). Analysts ask window queries — "admissions in week 12", "during
//! March", "around the outbreak" — i.e. exactly the range-count workload
//! Privelet optimizes. This example publishes once under ε-DP with the
//! three 1-D mechanisms and compares window-query accuracy across window
//! lengths.
//!
//! Run with: `cargo run --release --example time_series`

use privelet_repro::core::bounds::eq4_ordinal_bound;
use privelet_repro::core::mechanism::{
    publish_basic, publish_hierarchical_1d, publish_privelet, PriveletConfig,
};
use privelet_repro::data::schema::{Attribute, Schema};
use privelet_repro::data::FrequencyMatrix;
use privelet_repro::eval::ExactEvaluate;
use privelet_repro::matrix::NdMatrix;
use privelet_repro::noise::derive_rng;
use privelet_repro::query::{Predicate, RangeQuery};
use rand::Rng;

const HOURS: usize = 24 * 365;

fn main() {
    // Synthetic admissions: a daily cycle, a weekly cycle, a winter bump,
    // and an "outbreak" spike in autumn.
    let counts: Vec<f64> = (0..HOURS)
        .map(|h| {
            let hour_of_day = (h % 24) as f64;
            let day = h / 24;
            let daily = 6.0 + 4.0 * ((hour_of_day - 14.0) / 24.0 * std::f64::consts::TAU).cos();
            let weekly = if day % 7 >= 5 { 1.3 } else { 1.0 };
            let seasonal = 1.0 + 0.3 * ((day as f64) / 365.0 * std::f64::consts::TAU).cos();
            let outbreak = if (260..275).contains(&day) { 2.2 } else { 1.0 };
            (daily * weekly * seasonal * outbreak).round().max(0.0)
        })
        .collect();
    let n: f64 = counts.iter().sum();

    let schema = Schema::new(vec![Attribute::ordinal("hour", HOURS)]).unwrap();
    let fm =
        FrequencyMatrix::from_parts(schema, NdMatrix::from_vec(&[HOURS], counts).unwrap()).unwrap();

    let epsilon = 0.5;
    let basic = publish_basic(&fm, epsilon, 77).unwrap();
    let privelet = publish_privelet(&fm, &PriveletConfig::pure(epsilon, 77)).unwrap();
    let hier = publish_hierarchical_1d(&fm, epsilon, 77).unwrap();

    println!("published {n:.0} admissions over {HOURS} hourly buckets at ε = {epsilon}");
    println!(
        "Privelet variance bound (Eq. 4): {:.0}  [m pads to {}]",
        eq4_ordinal_bound(HOURS, epsilon),
        HOURS.next_power_of_two()
    );

    // Window queries of increasing length, 200 random placements each.
    println!("\nmean |error| by window length (hours), 200 random windows each:");
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>12}",
        "window", "exact mean", "Basic", "Privelet", "Hierarchical"
    );
    let mut rng = derive_rng(9, 9);
    for window in [6usize, 24, 7 * 24, 30 * 24, 90 * 24] {
        let (mut eb, mut ep, mut eh, mut mean_exact) = (0.0, 0.0, 0.0, 0.0);
        let trials = 200;
        for _ in 0..trials {
            let lo = rng.random_range(0..HOURS - window);
            let q = RangeQuery::new(vec![Predicate::Range {
                lo,
                hi: lo + window - 1,
            }]);
            let act = q.evaluate(&fm).unwrap();
            mean_exact += act;
            eb += (q.evaluate(&basic).unwrap() - act).abs();
            ep += (q.evaluate(&privelet.matrix).unwrap() - act).abs();
            eh += (q.evaluate(&hier).unwrap() - act).abs();
        }
        let t = trials as f64;
        println!(
            "{window:>8} {:>12.0} {:>12.1} {:>14.1} {:>12.1}",
            mean_exact / t,
            eb / t,
            ep / t,
            eh / t
        );
    }
    println!(
        "\nBasic's window error grows like sqrt(window); the two polylog\n\
         mechanisms stay nearly flat — the paper's headline, on time series."
    );
}
