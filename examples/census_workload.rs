//! A miniature of the paper's §VII-A evaluation: generate a census-like
//! dataset, publish it with Basic and Privelet⁺, and compare range-count
//! accuracy across coverage buckets.
//!
//! Run with: `cargo run --release --example census_workload`

use privelet_repro::core::bounds::recommend_sa;
use privelet_repro::core::mechanism::{publish_basic, publish_privelet, PriveletConfig};
use privelet_repro::data::census::{self, CensusConfig};
use privelet_repro::data::FrequencyMatrix;
use privelet_repro::matrix::PrefixSums;
use privelet_repro::query::{generate_workload, metrics, quantile_rows, WorkloadConfig};

fn main() {
    // A reduced Brazil-like dataset so the example runs in seconds. The
    // Occupation/Income domains stay large enough that the paper's SA rule
    // still selects exactly {Age, Gender} (a 301-value income would fall
    // below the |A| ≤ P²·H threshold and get excluded too).
    let mut cfg = CensusConfig::brazil().scaled();
    cfg.n_tuples = 1_000_000;
    cfg.occupation_size = 128;
    cfg.occupation_groups = 11;
    cfg.income_size = 751;
    println!(
        "generating {}: n = {}, m = {} cells",
        cfg.name,
        cfg.n_tuples,
        cfg.cell_count()
    );
    let table = census::generate(&cfg).expect("census generation");
    let exact = FrequencyMatrix::from_table(&table).expect("frequency matrix");

    // The §VII-A workload (scaled down from 40 000 queries).
    let workload_cfg = WorkloadConfig {
        n_queries: 4_000,
        ..WorkloadConfig::paper(7)
    };
    let queries = generate_workload(exact.schema(), &workload_cfg).expect("workload");
    let prefix = PrefixSums::build(exact.matrix());
    let acts: Vec<f64> = queries
        .iter()
        .map(|q| q.evaluate_prefix(exact.schema(), &prefix).unwrap())
        .collect();
    let coverages: Vec<f64> = queries
        .iter()
        .map(|q| q.coverage(exact.schema()).unwrap())
        .collect();
    let sanity = metrics::sanity_bound(table.len(), metrics::PAPER_SANITY_FRACTION);

    // Publish under ε = 1.
    let epsilon = 1.0;
    let sa = recommend_sa(exact.schema());
    let sa_names: Vec<&str> = sa.iter().map(|&i| exact.schema().attr(i).name()).collect();
    println!("publishing at ε = {epsilon}; Privelet+ SA = {sa_names:?}");
    let basic = publish_basic(&exact, epsilon, 99).expect("basic");
    let plus = publish_privelet(&exact, &PriveletConfig::plus(epsilon, sa, 99)).expect("privelet+");

    // Answer the whole workload on each noisy matrix.
    let basic_prefix = PrefixSums::build(basic.matrix());
    let plus_prefix = PrefixSums::build(plus.matrix.matrix());
    let mut basic_sq = Vec::with_capacity(queries.len());
    let mut plus_sq = Vec::with_capacity(queries.len());
    let mut basic_rel = Vec::with_capacity(queries.len());
    let mut plus_rel = Vec::with_capacity(queries.len());
    for (i, q) in queries.iter().enumerate() {
        let xb = q.evaluate_prefix(exact.schema(), &basic_prefix).unwrap();
        let xp = q.evaluate_prefix(exact.schema(), &plus_prefix).unwrap();
        basic_sq.push(metrics::square_error(xb, acts[i]));
        plus_sq.push(metrics::square_error(xp, acts[i]));
        basic_rel.push(metrics::relative_error(xb, acts[i], sanity));
        plus_rel.push(metrics::relative_error(xp, acts[i], sanity));
    }

    // Figures 6/8 in miniature: quintile buckets by coverage.
    println!("\naverage square error by coverage quintile (cf. Figure 6):");
    println!("{:>14} {:>14} {:>14}", "coverage", "Basic", "Privelet+");
    let rows = quantile_rows(&coverages, &[&basic_sq, &plus_sq], 5).unwrap();
    for r in &rows {
        println!(
            "{:>14.4e} {:>14.4e} {:>14.4e}",
            r.mean_key, r.mean_values[0], r.mean_values[1]
        );
    }

    println!("\naverage relative error by coverage quintile (cf. Figure 8):");
    println!("{:>14} {:>14} {:>14}", "coverage", "Basic", "Privelet+");
    let rows = quantile_rows(&coverages, &[&basic_rel, &plus_rel], 5).unwrap();
    for r in &rows {
        println!(
            "{:>14.4e} {:>14.2}% {:>14.2}%",
            r.mean_key,
            100.0 * r.mean_values[0],
            100.0 * r.mean_values[1]
        );
    }

    let top = rows.last().unwrap();
    println!(
        "\nlargest-coverage bucket: Privelet+ error is {:.1}x below Basic",
        top.mean_values[0] / top.mean_values[1]
    );
}
