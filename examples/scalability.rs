//! A small-scale preview of the §VII-B timing experiments: both mechanisms
//! scale linearly in the number of tuples n and the number of cells m.
//!
//! Run with: `cargo run --release --example scalability`
//! (The full Figures 10/11 sweeps live in the bench targets.)

use privelet_repro::eval::timing::{linear_fit, r_squared, time_once};

fn main() {
    // Keep m small so the O(n) term dominates the n-sweep (the bench-scale
    // Figure 10 uses the paper's n : m ratio instead).
    println!("time vs n (m ≈ 2^16 fixed):");
    println!("{:>10} {:>12} {:>14}", "n", "Basic (s)", "Privelet+ (s)");
    let mut ns = Vec::new();
    let mut privelet_times = Vec::new();
    for k in 1..=4 {
        let n = k * 500_000;
        let p = time_once(n, 1 << 16, 3).expect("timing run");
        println!(
            "{:>10} {:>12.3} {:>14.3}",
            p.n, p.basic_secs, p.privelet_secs
        );
        ns.push(n as f64);
        privelet_times.push(p.privelet_secs);
    }
    let (slope, _) = linear_fit(&ns, &privelet_times);
    println!(
        "Privelet+ slope {slope:.3e} s/tuple, R² = {:.4} (paper: linear in n)",
        r_squared(&ns, &privelet_times)
    );

    println!("\ntime vs m (n = 100k fixed):");
    println!("{:>12} {:>12} {:>14}", "m", "Basic (s)", "Privelet+ (s)");
    let mut ms = Vec::new();
    let mut privelet_times = Vec::new();
    for e in [14u32, 16, 18, 20] {
        let p = time_once(100_000, 1 << e, 3).expect("timing run");
        println!(
            "{:>12} {:>12.3} {:>14.3}",
            p.m, p.basic_secs, p.privelet_secs
        );
        ms.push(p.m as f64);
        privelet_times.push(p.privelet_secs);
    }
    let (slope, _) = linear_fit(&ms, &privelet_times);
    println!(
        "Privelet+ slope {slope:.3e} s/cell, R² = {:.4} (paper: linear in m)",
        r_squared(&ms, &privelet_times)
    );
}
