//! The `prop::` namespace (`prop::collection::vec` et al.).

/// Collection strategies.
pub mod collection {
    use crate::{Strategy, TestRng};

    /// Inclusive size bounds for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating a `Vec` of values from an element strategy.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec`: a vector of `elem`-generated values with a
    /// length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}
