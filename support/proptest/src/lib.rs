//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the proptest API the workspace's property tests use:
//!
//! - the [`Strategy`] trait with `prop_map`, `prop_flat_map`, `boxed`;
//! - strategies for integer / float ranges, [`Just`], tuples, `Vec<S>`,
//!   [`any`], `prop::collection::vec`, and [`prop_oneof!`] unions;
//! - the [`proptest!`] macro with optional `#![proptest_config(..)]`,
//!   plus `prop_assert!`, `prop_assert_eq!` and `prop_assume!`.
//!
//! Differences from real proptest: cases are generated from a seed derived
//! from the test's module path (deterministic run-to-run — convenient in
//! CI), and failing cases are **not shrunk**. The failing case's generated
//! inputs are reported with `Debug`: in the panic message for
//! `prop_assert*` failures, on stderr for plain panics inside the body
//! (so generated values must implement `Debug`, as in real proptest).

// No unsafe anywhere in this crate — enforced at compile time (and
// pinned by privelet-analysis lint US002). The only workspace crate
// with unsafe code is privelet-matrix (worker pool / lane executor).
#![forbid(unsafe_code)]

use rand::{Rng, RngCore, SeedableRng};
use std::ops::{Range, RangeInclusive};

pub mod prop;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; keep that so coverage matches.
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject(String),
    /// `prop_assert!`-style failure.
    Fail(String),
}

/// Result alias for generated test-case closures.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic generator driving the strategies. Delegates to the
/// workspace's `rand` stub (one SplitMix64 / Lemire implementation to
/// maintain) — mirroring real proptest, which is also built on `rand`.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    /// Seeds the RNG for a named test: the name is hashed (FNV-1a) so every
    /// test explores a different but reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: rand::rngs::StdRng::seed_from_u64(h),
        }
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `u64` on `[0, bound)`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.inner.random_range(0..bound)
    }

    /// Uniform `f64` on `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.random()
    }
}

/// A value generator. Unlike real proptest there is no shrinking tree: a
/// strategy simply produces values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (the [`prop_oneof!`] backend).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(width) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if width == 0 {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(width) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(rng.below(width) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i64).wrapping_sub(lo as i64) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(width + 1) as $t)
            }
        }
    )*};
}

signed_range_strategy!(i32 => u32, i64 => u64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        // The affine map can round up to exactly `end` for near-adjacent
        // bounds; clamp to preserve the exclusive upper bound.
        (self.start + rng.unit_f64() * (self.end - self.start)).min(self.end.next_down())
    }
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type of [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for primitives.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! any_primitive {
    ($($t:ty => |$rng:ident| $e:expr),* $(,)?) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, $rng: &mut TestRng) -> $t { $e }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy { AnyPrimitive(std::marker::PhantomData) }
        }
    )*};
}

any_primitive! {
    u8 => |rng| (rng.next_u64() >> 56) as u8,
    u16 => |rng| (rng.next_u64() >> 48) as u16,
    u32 => |rng| (rng.next_u64() >> 32) as u32,
    u64 => |rng| rng.next_u64(),
    usize => |rng| rng.next_u64() as usize,
    i32 => |rng| (rng.next_u64() >> 32) as i32,
    i64 => |rng| rng.next_u64() as i64,
    bool => |rng| rng.next_u64() >> 63 == 1,
    // Finite f64 spread over a wide but non-degenerate magnitude range.
    f64 => |rng| {
        let mag = rng.unit_f64() * 2e9 - 1e9;
        if rng.next_u64() & 1 == 0 { mag } else { mag / 1e6 }
    },
}

/// The canonical strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = ($a, $b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = ($a, $b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = ($a, $b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Rejects the current inputs; the case is retried with fresh ones.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests: each `fn name(pattern in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                // Generate all inputs first and render them before the
                // body can move them, so failures (and panics) can report
                // the exact generated case.
                let __vals = ($($crate::Strategy::generate(&($strat), &mut rng),)+);
                let __inputs = format!(
                    concat!("(", $(stringify!($arg), ", ",)+ ") = {:?}"),
                    &__vals
                );
                let ($($arg,)+) = __vals;
                #[allow(clippy::redundant_closure_call)]
                let case = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> $crate::TestCaseResult { $body ::std::result::Result::Ok(()) },
                ));
                match case {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => passed += 1,
                    ::std::result::Result::Ok(::std::result::Result::Err(
                        $crate::TestCaseError::Reject(_),
                    )) => {
                        rejected += 1;
                        assert!(
                            rejected < 1024 + 16 * config.cases,
                            "prop_assume! rejected too many cases ({rejected})"
                        );
                    }
                    ::std::result::Result::Ok(::std::result::Result::Err(
                        $crate::TestCaseError::Fail(msg),
                    )) => {
                        panic!(
                            "proptest case {} of {} failed: {}\n  inputs: {}",
                            passed + 1,
                            config.cases,
                            msg,
                            __inputs
                        );
                    }
                    ::std::result::Result::Err(payload) => {
                        eprintln!(
                            "proptest case {} of {} panicked; inputs: {}",
                            passed + 1,
                            config.cases,
                            __inputs
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -5i32..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u8..4, 2..=5)) {
            prop_assert!((2..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn flat_map_threads_values(pair in (1usize..6).prop_flat_map(|n| (Just(n), 0usize..n))) {
            let (n, k) = pair;
            prop_assert!(k < n);
        }

        #[test]
        fn oneof_hits_every_arm(v in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&v));
        }

        #[test]
        fn assume_retries(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[test]
        fn config_is_honored(_x in 0u8..=255) {
            // Body intentionally trivial; the loop count is the test.
        }
    }

    #[test]
    fn failing_case_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            // No #[test] attribute: expanded as a plain fn we call directly.
            proptest! {
                fn inner(x in 10usize..20) {
                    prop_assert!(x < 5, "x was {x}");
                }
            }
            inner();
        });
        assert!(result.is_err());
    }
}
