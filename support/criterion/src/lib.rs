//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the criterion API the workspace's benches use: the
//! [`Criterion`] driver with `bench_function` / `benchmark_group`,
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Methodology: each benchmark is warmed up for ~100 ms, then timed over
//! `sample_size` samples, each of which runs enough iterations to exceed a
//! fixed per-sample floor. The median, minimum and maximum per-iteration
//! times are printed in a criterion-like one-line format. There is no HTML
//! report, outlier analysis, or statistical regression testing — the point
//! is comparable relative numbers, machine-readably logged, without
//! external dependencies.

// No unsafe anywhere in this crate — enforced at compile time (and
// pinned by privelet-analysis lint US002). The only workspace crate
// with unsafe code is privelet-matrix (worker pool / lane executor).
#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` for API compatibility.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup allocations. All variants behave the
/// same here: one setup per timed iteration, setup excluded from timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median / min / max nanoseconds per iteration, filled by the
    /// measurement loop.
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            result: None,
        }
    }

    /// Times `routine` over repeated iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run for ~100 ms to stabilize caches and clocks, and
        // estimate the per-iteration cost for sample sizing.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < Duration::from_millis(100) {
            std_black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        // Aim for ~2 ms per sample so cheap routines are batched.
        let iters_per_sample = ((2e6 / est_ns).ceil() as u64).max(1);

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std_black_box(routine());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = per_iter[per_iter.len() / 2];
        self.result = Some((median, per_iter[0], per_iter[per_iter.len() - 1]));
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        // One warm-up pass.
        std_black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let output = std_black_box(routine(input));
            // Stop the clock before dropping the output, as real criterion
            // does (iter_batched excludes output deallocation).
            per_iter.push(start.elapsed().as_nanos() as f64);
            drop(output);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = per_iter[per_iter.len() / 2];
        self.result = Some((median, per_iter[0], per_iter[per_iter.len() - 1]));
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_one(id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new(samples);
    f(&mut b);
    match b.result {
        Some((median, lo, hi)) => println!(
            "{id:<40} time: [{} {} {}]",
            format_ns(lo),
            format_ns(median),
            format_ns(hi)
        ),
        None => println!("{id:<40} (no measurement: bencher not driven)"),
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.sample_size, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group-runner function invoking each benchmark fn in turn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_prints() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("smoke_iter", |b| b.iter(|| ran = ran.wrapping_add(1)));
        assert!(ran > 0);
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut calls = 0u64;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || 21u64,
                |x| {
                    calls += 1;
                    x * 2
                },
                BatchSize::SmallInput,
            )
        });
        group.finish();
        // 1 warm-up + 5 samples.
        assert_eq!(calls, 6);
    }
}
