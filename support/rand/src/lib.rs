//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate re-implements exactly the subset of the `rand` 0.9 API the
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension trait (`random`, `random_range`) and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is a SplitMix64 stream: 64 bits of state advanced by a
//! fixed odd constant and finalized with a strong avalanche mixer. It is
//! statistically solid for simulation workloads (it passes BigCrush as the
//! seeding generator of xoshiro) and — the property the workspace actually
//! relies on — fully deterministic per seed. Streams produced by different
//! seeds are decorrelated by the same mixer.
//!
//! Not implemented (not needed here): thread-local RNGs, fill/bytes APIs,
//! the distribution module, weighted sampling.

// No unsafe anywhere in this crate — enforced at compile time (and
// pinned by privelet-analysis lint US002). The only workspace crate
// with unsafe code is privelet-matrix (worker pool / lane executor).
#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

/// Golden-ratio increment of the SplitMix64 stream.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A source of raw 64-bit random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from raw random bits (the `StandardUniform`
/// distribution of real `rand`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for u16 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl StandardSample for u8 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl StandardSample for usize {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for i64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl StandardSample for i32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as i32
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` on `[0, bound)` via Lemire's multiply-shift with a
/// rejection pass, so every value is exactly equally likely.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // threshold = 2^64 mod bound: reject the low-product region that would
    // otherwise make small residues one part in 2^64 more likely.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, width) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let width = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if width == 0 {
                    // Full-width u64 range.
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, width) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u: f64 = StandardSample::sample(rng);
        // The affine map can round up to exactly `end` for near-adjacent
        // bounds; clamp to preserve the exclusive upper bound.
        (self.start + u * (self.end - self.start)).min(self.end.next_down())
    }
}

/// The user-facing extension trait: `random`, `random_range`.
pub trait Rng: RngCore {
    /// Draws a uniformly random value of `T`.
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.random()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.random()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..10)] = true;
            let v = rng.random_range(3u32..=5);
            assert!((3..=5).contains(&v));
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn range_distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[rng.random_range(0usize..7)] += 1;
        }
        for &c in &counts {
            let expected = n / 7;
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < (expected / 10) as u64,
                "count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn f64_range_stays_inside() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&x));
        }
    }
}
