//! Concrete generators.

use crate::{mix64, RngCore, SeedableRng, GOLDEN_GAMMA};

/// The workspace's standard RNG: a SplitMix64 stream.
///
/// Unlike the real `rand::rngs::StdRng` (ChaCha12) this is not
/// cryptographically secure; the workspace only needs reproducible
/// statistical randomness for noise sampling and data generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    #[inline]
    fn seed_from_u64(seed: u64) -> Self {
        // Pre-mix the seed so nearby seeds start in decorrelated states.
        StdRng {
            state: mix64(seed ^ GOLDEN_GAMMA),
        }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }
}
