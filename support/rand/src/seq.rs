//! Slice helpers (`rand::seq` subset).

use crate::{Rng, SampleRange};

/// Random slice operations.
pub trait SliceRandom {
    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0usize..=i).sample_single(rng);
            self.swap(i, j);
        }
    }
}
